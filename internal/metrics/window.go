package metrics

import "time"

// UsageWindow tracks how much "busy time" an entity accumulated within a
// trailing window of virtual time — the accounting structure behind the
// paper's sliding-window GPU usage rate (§4.5). Intervals are recorded as
// [start, end) busy spans; Rate(now) returns busy/window over
// [now-window, now].
type UsageWindow struct {
	window time.Duration
	spans  []span
}

type span struct{ start, end time.Duration }

// NewUsageWindow returns a tracker over the given trailing window width.
func NewUsageWindow(window time.Duration) *UsageWindow {
	if window <= 0 {
		panic("metrics: non-positive usage window")
	}
	return &UsageWindow{window: window}
}

// Window returns the configured window width.
func (u *UsageWindow) Window() time.Duration { return u.window }

// AddSpan records a busy interval [start, end). Spans must be appended in
// nondecreasing start order; overlapping or zero-length spans are tolerated
// (overlaps are counted twice — callers record disjoint token-hold spans).
func (u *UsageWindow) AddSpan(start, end time.Duration) {
	if end <= start {
		return
	}
	u.spans = append(u.spans, span{start, end})
}

// evict drops spans that ended before the window start.
func (u *UsageWindow) evict(now time.Duration) {
	cut := now - u.window
	i := 0
	for i < len(u.spans) && u.spans[i].end <= cut {
		i++
	}
	if i > 0 {
		u.spans = append(u.spans[:0], u.spans[i:]...)
	}
}

// Busy returns the busy time accumulated within [now-window, now]. Spans
// straddling the window start are counted pro rata.
func (u *UsageWindow) Busy(now time.Duration) time.Duration {
	u.evict(now)
	cut := now - u.window
	var busy time.Duration
	for _, sp := range u.spans {
		s, e := sp.start, sp.end
		if s < cut {
			s = cut
		}
		if e > now {
			e = now
		}
		if e > s {
			busy += e - s
		}
	}
	return busy
}

// Rate returns the busy fraction of the window at time now, in [0, 1] for
// disjoint spans.
func (u *UsageWindow) Rate(now time.Duration) float64 {
	return float64(u.Busy(now)) / float64(u.window)
}

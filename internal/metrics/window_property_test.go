package metrics

import (
	"math/rand"
	"testing"
	"time"
)

// bruteBusy is the obviously-correct reference: clip every span ever
// recorded to [now-window, now] and sum, with no incremental state at all.
func bruteBusy(spans []span, window, now time.Duration) time.Duration {
	cut := now - window
	var busy time.Duration
	for _, sp := range spans {
		s, e := sp.start, sp.end
		if s < cut {
			s = cut
		}
		if e > now {
			e = now
		}
		if e > s {
			busy += e - s
		}
	}
	return busy
}

// TestUsageWindowMatchesBruteForce drives randomized span/query interleavings
// through the incremental ring and checks every Busy answer against the
// brute-force rescan of the full history. Span lengths are drawn so that
// window-boundary straddling, zero-length spans, overlapping spans, and
// queries landing inside a span all occur.
func TestUsageWindowMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		window := time.Duration(1+rng.Intn(50)) * time.Millisecond
		u := NewUsageWindow(window)
		var history []span

		// start advances monotonically (AddSpan's contract); queries are
		// nondecreasing too, matching how the devlib consults the window.
		var start, lastQuery time.Duration
		for step := 0; step < 2000; step++ {
			switch rng.Intn(3) {
			case 0, 1: // record a span
				start += time.Duration(rng.Intn(int(window) / 2))
				length := time.Duration(rng.Intn(int(window)))
				if rng.Intn(10) == 0 {
					length = 0 // zero-length spans must be ignored
				}
				u.AddSpan(start, start+length)
				history = append(history, span{start, start + length})
			default: // query
				// Mostly at/after the record frontier, occasionally behind it
				// (inside a recorded span), never before the previous query.
				now := start + time.Duration(rng.Intn(int(window)))
				if rng.Intn(4) == 0 && start > window/4 {
					now = start - window/4
				}
				if now < lastQuery {
					now = lastQuery
				}
				lastQuery = now
				got := u.Busy(now)
				want := bruteBusy(history, window, now)
				if got != want {
					t.Fatalf("seed %d step %d: Busy(%v) = %v, brute force = %v (window %v, %d spans)",
						seed, step, now, got, want, window, len(history))
				}
			}
		}
	}
}

// BenchmarkUsageWindowRate measures the steady-state query cost with a busy
// producer: one span and one query per iteration, windowful of spans
// retained. The incremental sum makes this O(1); the pre-optimization
// implementation rescanned every retained span per query.
func BenchmarkUsageWindowRate(b *testing.B) {
	const window = 100 * time.Millisecond
	u := NewUsageWindow(window)
	now := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// ~50 spans retained in the window at any time.
		u.AddSpan(now, now+time.Millisecond)
		now += 2 * time.Millisecond
		_ = u.Rate(now)
	}
}

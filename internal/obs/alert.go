package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Comparison operators for alert rules.
const (
	OpAbove = ">"
	OpBelow = "<"
)

// AlertRule is one declarative SLO condition, evaluated periodically on the
// virtual clock against every labeled child of Metric. The signal is chosen
// by the metric's type: histograms are judged by Quantile over the
// observations of the last evaluation window (a windowed delta, not the
// lifetime distribution), counters by their per-second rate over the
// window, and gauges/float gauges by instantaneous value.
type AlertRule struct {
	// Name is the CamelCase alert reason, e.g. "TokenWaitP99High"; it
	// becomes the Reason of the emitted events.
	Name string
	// Metric is the family the rule watches.
	Metric string
	// Quantile selects the windowed order statistic for histogram metrics
	// (e.g. 0.99); ignored for other metric types.
	Quantile float64
	// Op compares the signal against Threshold: OpAbove or OpBelow.
	Op string
	// Threshold is the SLO boundary.
	Threshold float64
	// For is how long the condition must hold continuously before the
	// alert fires — transient excursions shorter than For never emit.
	For time.Duration
}

// AlertStatus is the externally visible state of one (rule, labeled child)
// pair.
type AlertStatus struct {
	Rule      string  `json:"rule"`
	Metric    string  `json:"metric"`
	Labels    []Label `json:"labels,omitempty"`
	State     string  `json:"state"` // "inactive", "pending" or "firing"
	Value     float64 `json:"value"` // last evaluated signal
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	// Since is when the condition started holding (pending/firing only).
	Since time.Duration `json:"since,omitempty"`
}

// alertState tracks one (rule, child) pair across evaluations.
type alertState struct {
	labels       []Label
	pendingSince time.Duration
	pending      bool
	firing       bool
	value        float64
}

// AlertEngine evaluates a rule set against the registry on the virtual
// clock and emits deduplicated events on state transitions only: one
// Warning when a rule starts firing, one Normal when it resolves. Repeated
// evaluations of a firing rule stay silent (the apiserver event sink
// additionally collapses repeats by count, k8s-style).
type AlertEngine struct {
	reg      *Registry
	rules    []AlertRule
	recorder *Recorder

	states   map[string]*alertState       // rule name + rendered labels
	prevHist map[string]HistogramSnapshot // metric + rendered labels
	prevCtr  map[string]int64
	lastEval time.Duration
}

// NewAlertEngine builds an engine over the runtime's registry; its events
// carry the "slo" source. A nil runtime yields a nil engine whose methods
// no-op, matching the rest of the obs surface.
func NewAlertEngine(rt *Runtime, rules []AlertRule) *AlertEngine {
	if rt == nil {
		return nil
	}
	return &AlertEngine{
		reg:      rt.Registry(),
		rules:    rules,
		recorder: rt.EventSource("slo"),
		states:   map[string]*alertState{},
		prevHist: map[string]HistogramSnapshot{},
		prevCtr:  map[string]int64{},
	}
}

// Evaluate runs every rule once against a fresh registry snapshot at
// virtual time now. Callers drive it periodically (the tsdb collector's
// sampler hook in the experiment harness and serve mode).
func (e *AlertEngine) Evaluate(now time.Duration) {
	if e == nil {
		return
	}
	snap := e.reg.Snapshot()
	interval := now - e.lastEval
	for _, r := range e.rules {
		for _, sig := range e.signals(r, snap, interval) {
			e.apply(r, sig, now)
		}
	}
	// Remember histogram/counter baselines for the next window.
	for _, h := range snap.Histograms {
		e.prevHist[h.Name+FormatLabels(h.Labels)] = h
	}
	for _, c := range snap.Counters {
		e.prevCtr[c.Name+FormatLabels(c.Labels)] = c.Value
	}
	e.lastEval = now
}

// signal is one evaluated (labels, value) pair; ok=false means the child
// produced no observations this window, which never changes alert state.
type signal struct {
	labels []Label
	value  float64
	ok     bool
}

// signals extracts the rule's signal from every matching labeled child.
func (e *AlertEngine) signals(r AlertRule, snap MetricsSnapshot, interval time.Duration) []signal {
	var out []signal
	for _, h := range snap.Histograms {
		if h.Name != r.Metric {
			continue
		}
		prev := e.prevHist[h.Name+FormatLabels(h.Labels)]
		delta := histDelta(h, prev)
		out = append(out, signal{h.Labels, delta.Quantile(r.Quantile), delta.Count > 0})
	}
	if out != nil {
		return out
	}
	for _, f := range snap.Floats {
		if f.Name == r.Metric {
			out = append(out, signal{f.Labels, f.Value, true})
		}
	}
	if out != nil {
		return out
	}
	for _, g := range snap.Gauges {
		if g.Name == r.Metric {
			out = append(out, signal{g.Labels, float64(g.Value), true})
		}
	}
	if out != nil {
		return out
	}
	for _, c := range snap.Counters {
		if c.Name != r.Metric || interval <= 0 {
			continue
		}
		dv := c.Value - e.prevCtr[c.Name+FormatLabels(c.Labels)]
		out = append(out, signal{c.Labels, float64(dv) / interval.Seconds(), true})
	}
	return out
}

// histDelta returns the histogram of observations made since prev.
func histDelta(cur, prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Name:   cur.Name,
		Labels: cur.Labels,
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
		Bounds: cur.Bounds,
		Counts: make([]int64, len(cur.Counts)),
	}
	for i := range cur.Counts {
		d.Counts[i] = cur.Counts[i]
		if i < len(prev.Counts) {
			d.Counts[i] -= prev.Counts[i]
		}
	}
	return d
}

// apply advances one child's state machine and emits transition events.
func (e *AlertEngine) apply(r AlertRule, sig signal, now time.Duration) {
	key := r.Name + FormatLabels(sig.labels)
	st, found := e.states[key]
	if !found {
		st = &alertState{labels: sig.labels}
		e.states[key] = st
	}
	if sig.ok {
		st.value = sig.value
	}
	breach := sig.ok && ((r.Op == OpAbove && sig.value > r.Threshold) ||
		(r.Op == OpBelow && sig.value < r.Threshold))
	switch {
	case breach && !st.firing:
		if !st.pending {
			st.pending = true
			st.pendingSince = now
		}
		if now-st.pendingSince >= r.For {
			st.firing = true
			e.recorder.Eventf("SLO", key, EventWarning, r.Name,
				"%s%s = %.6g, SLO %s %.6g for %v", r.Metric, FormatLabels(sig.labels),
				sig.value, r.Op, r.Threshold, r.For)
		}
	case !breach && st.firing:
		st.firing, st.pending = false, false
		e.recorder.Eventf("SLO", key, EventNormal, r.Name+"Resolved",
			"%s%s = %.6g back within SLO %s %.6g", r.Metric, FormatLabels(sig.labels),
			sig.value, r.Op, r.Threshold)
	case !breach:
		st.pending = false
	}
}

// States returns the status of every tracked (rule, child) pair, sorted by
// rule then labels — the /alerts endpoint payload.
func (e *AlertEngine) States() []AlertStatus {
	if e == nil {
		return nil
	}
	keys := make([]string, 0, len(e.states))
	for k := range e.states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]AlertStatus, 0, len(keys))
	for _, k := range keys {
		st := e.states[k]
		var r AlertRule
		for _, rule := range e.rules {
			if rule.Name+FormatLabels(st.labels) == k {
				r = rule
				break
			}
		}
		s := AlertStatus{
			Rule: r.Name, Metric: r.Metric, Labels: st.labels,
			State: "inactive", Value: st.value, Op: r.Op, Threshold: r.Threshold,
		}
		switch {
		case st.firing:
			s.State, s.Since = "firing", st.pendingSince
		case st.pending:
			s.State, s.Since = "pending", st.pendingSince
		}
		out = append(out, s)
	}
	return out
}

// Firing returns the number of currently firing (rule, child) pairs.
func (e *AlertEngine) Firing() int {
	if e == nil {
		return 0
	}
	n := 0
	for _, st := range e.states {
		if st.firing {
			n++
		}
	}
	return n
}

// FormatAlerts writes the alert states as stable text, one line each.
func FormatAlerts(w io.Writer, states []AlertStatus) {
	for _, s := range states {
		fmt.Fprintf(w, "%-8s %s%s %s %.6g %s %.6g\n",
			s.State, s.Rule, FormatLabels(s.Labels), s.Metric, s.Value, s.Op, s.Threshold)
	}
}

// DefaultSLORules is the KubeShare rule set: the paper's own evaluation
// targets expressed as SLOs. Thresholds are tuned so a saturated sharing
// workload (the Fig 9 mix) deterministically exercises at least the
// token-wait rule.
func DefaultSLORules() []AlertRule {
	return []AlertRule{
		{
			// Token-wait tail: a client should not wait more than a handful
			// of scheduling quotas for the compute token.
			Name: "TokenWaitP99High", Metric: "kubeshare_devlib_token_wait_seconds",
			Quantile: 0.99, Op: OpAbove, Threshold: 0.200, For: 5 * time.Second,
		},
		{
			// End-to-end scheduling latency from submission to decision.
			Name: "SchedLatencyP99High", Metric: "kubeshare_sched_latency_seconds",
			Quantile: 0.99, Op: OpAbove, Threshold: 2.0, For: 5 * time.Second,
		},
		{
			// Allocated vGPUs should not sit idle: utilization floor per GPU.
			Name: "GPUUtilizationLow", Metric: "kubeshare_gpu_utilization_ratio",
			Op: OpBelow, Threshold: 0.02, For: 30 * time.Second,
		},
		{
			// A tenant pinned far below its guaranteed request is starving.
			Name: "TenantStarved", Metric: "kubeshare_tenant_token_share_ratio",
			Op: OpBelow, Threshold: 0.10, For: 30 * time.Second,
		},
	}
}

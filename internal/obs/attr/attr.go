// Package attr is the critical-path analysis engine over the causal span
// chains the observability runtime records. For every completed sharePod
// it walks the six-layer chain — create → schedule → bind → holder-ready
// → pod-sync → token-grant → kernel-launch — and attributes the
// end-to-end latency to typed phases: queue wait, scheduling, binding,
// device handoff, kubelet sync, token wait and launch, with retry time
// (requeues after chaos restarts, lost pods, mid-bind device deaths)
// attributed to a dedicated retry phase rather than silently inflating
// schedule.
//
// The attribution is telescoping over monotonic chain anchors: each
// phase is the interval between two consecutive milestones of the final
// scheduling attempt, so the per-chain phase durations sum to the
// end-to-end latency exactly (not within a tolerance — exactly), and a
// missing milestone (a gang member sharing another member's bind, say)
// folds its interval into the next present phase instead of losing it.
//
// Chains that never reach their first kernel launch — a run ending
// mid-flight, a sharePod stuck pending — are open chains: they are
// excluded from breakdowns (an open span's duration would silently
// under-report) and surfaced separately, so consumers can count them
// (kubeshare_obs_open_chains) instead of folding zeros into percentiles.
package attr

import (
	"sort"
	"strings"
	"time"

	"kubeshare/internal/obs"
)

// Phase names one attributed slice of a sharePod's end-to-end latency.
type Phase string

// The attribution phases, in chain order.
const (
	// PhaseQueueWait is submission to the start of the first scheduling
	// attempt: apiserver admission, watch delivery, pending-queue wait.
	PhaseQueueWait Phase = "queue_wait"
	// PhaseRetry is the first scheduling attempt's start to the final
	// attempt's start — all failed attempts, lost runtime and requeue
	// waits. Zero on chains that scheduled once.
	PhaseRetry Phase = "retry"
	// PhaseSchedule is the final (successful) scheduling cycle itself.
	PhaseSchedule Phase = "schedule"
	// PhaseBind is schedule commit to bind completion: DevMgr's vGPU
	// ensure (holder pod start falls inside) and bound-pod creation.
	PhaseBind Phase = "bind"
	// PhaseHandoff is bind completion to the kubelet observing the bound
	// pod — the watch/device handoff between control-plane layers.
	PhaseHandoff Phase = "handoff"
	// PhasePodSync is the kubelet's pod sync: device-plugin allocation,
	// image pull, container starts.
	PhasePodSync Phase = "pod_sync"
	// PhaseTokenWait is pod running to the device library's first token
	// grant — the sharing-pressure wait the paper's guarantees bound.
	PhaseTokenWait Phase = "token_wait"
	// PhaseLaunch is token grant to the first kernel launch.
	PhaseLaunch Phase = "launch"
)

// Phases lists every phase in chain order — the canonical iteration
// order for tables and folded profiles.
var Phases = []Phase{
	PhaseQueueWait, PhaseRetry, PhaseSchedule, PhaseBind,
	PhaseHandoff, PhasePodSync, PhaseTokenWait, PhaseLaunch,
}

// SpanRef identifies one span on a breakdown's critical path.
type SpanRef struct {
	ID        int64
	Component string
	Op        string
}

// Breakdown attributes one completed sharePod chain's end-to-end
// latency (submission to first kernel launch) to phases.
type Breakdown struct {
	// Key is the chain key ("SharePod/job-003").
	Key string
	// Start is the chain's submission time on the virtual clock.
	Start time.Duration
	// EndToEnd is first-kernel-launch minus submission. The phase
	// durations sum to it exactly.
	EndToEnd time.Duration
	// Phases maps each phase to its attributed duration. Absent phases
	// (no retry, no distinct launch gap) carry zero.
	Phases map[Phase]time.Duration
	// CriticalPath lists the milestone spans the attribution anchored
	// on, in chain order.
	CriticalPath []SpanRef
	// Retries counts scheduling attempts beyond the first.
	Retries int
}

// Sum returns the total of all attributed phases — by construction equal
// to EndToEnd.
func (b Breakdown) Sum() time.Duration {
	var s time.Duration
	for _, d := range b.Phases {
		s += d
	}
	return s
}

// Result is the analysis of one span trace.
type Result struct {
	// Breakdowns holds one entry per completed sharePod chain, sorted
	// by chain key.
	Breakdowns []Breakdown
	// Open lists the chain keys that never completed (no kernel launch
	// after the final scheduling attempt), sorted.
	Open []string
}

// chainPrefix selects the sharePod chains out of a mixed trace (vGPU
// recovery spans, scheduler batch spans and native-pod chains share the
// same tracer).
const chainPrefix = "SharePod/"

// Analyze walks every sharePod chain in spans and returns the per-chain
// breakdowns plus the open (incomplete) chains. Spans arrive in record
// order — single-threaded virtual time — so within a chain, element
// order is causal order.
func Analyze(spans []obs.Span) Result {
	chains := map[string][]obs.Span{}
	keys := []string{}
	for _, s := range spans {
		if !strings.HasPrefix(s.Key, chainPrefix) {
			continue
		}
		if _, ok := chains[s.Key]; !ok {
			keys = append(keys, s.Key)
		}
		chains[s.Key] = append(chains[s.Key], s)
	}
	sort.Strings(keys)
	var res Result
	for _, k := range keys {
		if bd, ok := analyzeChain(k, chains[k]); ok {
			res.Breakdowns = append(res.Breakdowns, bd)
		} else {
			res.Open = append(res.Open, k)
		}
	}
	return res
}

// analyzeChain attributes one chain, or reports it open.
func analyzeChain(key string, chain []obs.Span) (Breakdown, bool) {
	// Anchor 0: submission. A chain without a create mark is not a
	// sharePod lifecycle we can attribute.
	createIdx := -1
	for i, s := range chain {
		if s.Op == "create" {
			createIdx = i
			break
		}
	}
	if createIdx < 0 {
		return Breakdown{}, false
	}
	t0 := chain[createIdx].Start

	// Scheduling attempts: the final attempt is the last closed
	// "schedule" span; everything between the first attempt's start and
	// the final attempt's start is retry time (failed cycles, lost pods
	// after chaos, requeue waits).
	firstSched, finalSched := -1, -1
	attempts := 0
	for i, s := range chain {
		if s.Op == "schedule" && !s.Open() {
			if firstSched < 0 {
				firstSched = i
			}
			finalSched = i
			attempts++
		}
	}
	if finalSched < 0 {
		return Breakdown{}, false
	}

	bd := Breakdown{
		Key:     key,
		Start:   t0,
		Phases:  map[Phase]time.Duration{},
		Retries: attempts - 1,
	}
	ref := func(i int) SpanRef {
		return SpanRef{ID: chain[i].ID, Component: chain[i].Component, Op: chain[i].Op}
	}
	bd.CriticalPath = append(bd.CriticalPath, ref(createIdx))
	bd.Phases[PhaseQueueWait] = chain[firstSched].Start - t0
	if firstSched != finalSched {
		bd.CriticalPath = append(bd.CriticalPath, ref(firstSched))
		bd.Phases[PhaseRetry] = chain[finalSched].Start - chain[firstSched].Start
	}
	bd.CriticalPath = append(bd.CriticalPath, ref(finalSched))
	bd.Phases[PhaseSchedule] = chain[finalSched].End - chain[finalSched].Start

	// Milestones of the final attempt, scanned past the final schedule
	// span. Each phase closes at its anchor; a missing anchor (gang
	// members share one member's bind span; overlap strategies can grant
	// and launch in the same instant) folds into the next present phase,
	// so the telescoping sum stays exact.
	type milestone struct {
		phase  Phase
		anchor time.Duration
		span   int // chain index, -1 when absent
	}
	find := func(op string, from int, wantClosed bool) int {
		for i := from + 1; i < len(chain); i++ {
			if chain[i].Op == op && (!wantClosed || !chain[i].Open()) {
				return i
			}
		}
		return -1
	}
	bindIdx := find("bind", finalSched, true)
	syncIdx := find("pod-sync", finalSched, true)
	grantIdx := find("token-grant", finalSched, false)
	launchIdx := find("kernel-launch", finalSched, false)
	if launchIdx < 0 {
		// Never launched after the final attempt: the chain is open —
		// a run that ended mid-flight, or a sharePod stuck in binding.
		return Breakdown{}, false
	}
	steps := []milestone{}
	if bindIdx >= 0 {
		steps = append(steps, milestone{PhaseBind, chain[bindIdx].End, bindIdx})
	}
	if syncIdx >= 0 {
		steps = append(steps,
			milestone{PhaseHandoff, chain[syncIdx].Start, -1},
			milestone{PhasePodSync, chain[syncIdx].End, syncIdx})
	}
	if grantIdx >= 0 {
		steps = append(steps, milestone{PhaseTokenWait, chain[grantIdx].Start, grantIdx})
	}
	steps = append(steps, milestone{PhaseLaunch, chain[launchIdx].Start, launchIdx})

	cursor := chain[finalSched].End
	for _, m := range steps {
		bd.Phases[m.phase] += m.anchor - cursor
		cursor = m.anchor
		if m.span >= 0 {
			bd.CriticalPath = append(bd.CriticalPath, ref(m.span))
		}
	}
	bd.EndToEnd = chain[launchIdx].Start - t0
	return bd, true
}

package attr

import (
	"strings"
	"testing"
	"time"

	"kubeshare/internal/obs"
)

const ms = time.Millisecond

// span builds a closed span; end < 0 marks it open (the tracer's
// in-flight sentinel).
func span(id int64, key, component, op string, start, end time.Duration) obs.Span {
	return obs.Span{ID: id, Key: key, Component: component, Op: op, Start: start, End: end}
}

// mark builds an instantaneous milestone span.
func mark(id int64, key, component, op string, at time.Duration) obs.Span {
	return span(id, key, component, op, at, at)
}

// simpleChain is a complete six-layer chain: create at 0, schedule
// 100..115, bind 120..220 (holder-ready inside), pod-sync 220..320,
// token grant 350, kernel launch 352.
func simpleChain(key string) []obs.Span {
	return []obs.Span{
		mark(1, key, "apiserver", "create", 0),
		span(2, key, "kubeshare-sched", "schedule", 100*ms, 115*ms),
		span(3, key, "devmgr", "bind", 120*ms, 220*ms),
		mark(4, key, "devmgr", "holder-ready", 200*ms),
		span(5, key, "kubelet", "pod-sync", 220*ms, 320*ms),
		mark(6, key, "devlib", "token-grant", 350*ms),
		mark(7, key, "gpusim", "kernel-launch", 352*ms),
	}
}

func TestAnalyzeSimpleChain(t *testing.T) {
	res := Analyze(simpleChain("SharePod/a"))
	if len(res.Open) != 0 || len(res.Breakdowns) != 1 {
		t.Fatalf("want 1 completed chain, got %d completed %d open", len(res.Breakdowns), len(res.Open))
	}
	bd := res.Breakdowns[0]
	want := map[Phase]time.Duration{
		PhaseQueueWait: 100 * ms,
		PhaseSchedule:  15 * ms,
		PhaseBind:      105 * ms, // schedule end 115 -> bind end 220
		PhaseHandoff:   0,
		PhasePodSync:   100 * ms,
		PhaseTokenWait: 30 * ms,
		PhaseLaunch:    2 * ms,
	}
	for ph, d := range want {
		if bd.Phases[ph] != d {
			t.Errorf("%s = %v, want %v", ph, bd.Phases[ph], d)
		}
	}
	if bd.Phases[PhaseRetry] != 0 || bd.Retries != 0 {
		t.Errorf("unexpected retry attribution: %v (%d retries)", bd.Phases[PhaseRetry], bd.Retries)
	}
	if bd.EndToEnd != 352*ms {
		t.Errorf("EndToEnd = %v, want 352ms", bd.EndToEnd)
	}
	if bd.Sum() != bd.EndToEnd {
		t.Errorf("phase sum %v != end-to-end %v", bd.Sum(), bd.EndToEnd)
	}
	if len(bd.CriticalPath) != 6 {
		t.Errorf("critical path has %d spans, want 6: %+v", len(bd.CriticalPath), bd.CriticalPath)
	}
}

// TestAnalyzeRetry: a first attempt that scheduled, bound and ran, then
// lost its pod (requeue) and went through a second full attempt. All
// first-attempt time past its schedule start lands in retry, and the
// phase sum still telescopes exactly to the end-to-end latency.
func TestAnalyzeRetry(t *testing.T) {
	key := "SharePod/b"
	chain := []obs.Span{
		mark(1, key, "apiserver", "create", 0),
		span(2, key, "kubeshare-sched", "schedule", 50*ms, 65*ms),
		span(3, key, "devmgr", "bind", 70*ms, 170*ms),
		mark(4, key, "kubeshare-sched", "requeue", 400*ms),
		span(5, key, "kubeshare-sched", "schedule", 430*ms, 445*ms),
		span(6, key, "devmgr", "bind", 450*ms, 550*ms),
		span(7, key, "kubelet", "pod-sync", 550*ms, 650*ms),
		mark(8, key, "devlib", "token-grant", 700*ms),
		mark(9, key, "gpusim", "kernel-launch", 700*ms),
	}
	res := Analyze(chain)
	if len(res.Breakdowns) != 1 {
		t.Fatalf("want 1 completed chain, got %d (open %v)", len(res.Breakdowns), res.Open)
	}
	bd := res.Breakdowns[0]
	if bd.Retries != 1 {
		t.Errorf("Retries = %d, want 1", bd.Retries)
	}
	if bd.Phases[PhaseRetry] != 380*ms { // first attempt start 50 -> final start 430
		t.Errorf("retry = %v, want 380ms", bd.Phases[PhaseRetry])
	}
	if bd.Phases[PhaseQueueWait] != 50*ms {
		t.Errorf("queue_wait = %v, want 50ms", bd.Phases[PhaseQueueWait])
	}
	if bd.Phases[PhaseSchedule] != 15*ms {
		t.Errorf("schedule = %v, want 15ms (final attempt only)", bd.Phases[PhaseSchedule])
	}
	if bd.EndToEnd != 700*ms || bd.Sum() != bd.EndToEnd {
		t.Errorf("sum %v vs end-to-end %v (want 700ms, exact)", bd.Sum(), bd.EndToEnd)
	}
}

// TestAnalyzeSharedBind: a gang member with no bind span of its own —
// the schedule-to-pod-sync interval folds into handoff, nothing is
// lost, and the sum stays exact.
func TestAnalyzeSharedBind(t *testing.T) {
	key := "SharePod/c"
	chain := []obs.Span{
		mark(1, key, "apiserver", "create", 0),
		span(2, key, "kubeshare-sched", "schedule", 10*ms, 25*ms),
		span(3, key, "kubelet", "pod-sync", 125*ms, 200*ms),
		mark(4, key, "devlib", "token-grant", 230*ms),
		mark(5, key, "gpusim", "kernel-launch", 230*ms),
	}
	res := Analyze(chain)
	if len(res.Breakdowns) != 1 {
		t.Fatalf("want 1 completed chain, got %d", len(res.Breakdowns))
	}
	bd := res.Breakdowns[0]
	if bd.Phases[PhaseBind] != 0 {
		t.Errorf("bind = %v, want 0 (no bind span)", bd.Phases[PhaseBind])
	}
	if bd.Phases[PhaseHandoff] != 100*ms {
		t.Errorf("handoff = %v, want 100ms (absorbs the missing bind)", bd.Phases[PhaseHandoff])
	}
	if bd.Sum() != bd.EndToEnd {
		t.Errorf("sum %v != end-to-end %v", bd.Sum(), bd.EndToEnd)
	}
}

// TestAnalyzeOpenChains: a chain cut off mid-flight (open bind, no
// kernel launch) and a chain that never scheduled are both open, and
// non-sharePod keys are ignored entirely.
func TestAnalyzeOpenChains(t *testing.T) {
	spans := []obs.Span{
		mark(1, "SharePod/x", "apiserver", "create", 0),
		span(2, "SharePod/x", "kubeshare-sched", "schedule", 10*ms, 25*ms),
		span(3, "SharePod/x", "devmgr", "bind", 30*ms, -1), // still in flight
		mark(4, "SharePod/y", "apiserver", "create", 5*ms),
		span(5, "VGPU/vgpu-0001", "devmgr", "recover", 0, 40*ms),
	}
	res := Analyze(spans)
	if len(res.Breakdowns) != 0 {
		t.Fatalf("no chain completed, got %d breakdowns", len(res.Breakdowns))
	}
	if len(res.Open) != 2 || res.Open[0] != "SharePod/x" || res.Open[1] != "SharePod/y" {
		t.Fatalf("Open = %v, want [SharePod/x SharePod/y]", res.Open)
	}
}

func TestBuildProfile(t *testing.T) {
	spans := append(simpleChain("SharePod/a"),
		span(8, "SharePod/open", "devmgr", "bind", 0, -1),
		mark(9, "SharePod/open", "apiserver", "create", 0),
	)
	p := BuildProfile(spans, "token")
	if p.Chains != 1 || p.OpenChains != 1 {
		t.Fatalf("chains=%d open=%d, want 1/1", p.Chains, p.OpenChains)
	}
	for _, e := range p.Entries {
		if e.Component == "devmgr" && e.Op == "bind" {
			if e.Count != 1 || e.Open != 1 {
				t.Errorf("devmgr/bind count=%d open=%d, want closed=1 open=1", e.Count, e.Open)
			}
			if e.Total != 100*ms {
				t.Errorf("devmgr/bind total=%v, want 100ms (open span excluded)", e.Total)
			}
		}
	}
	var flat, folded strings.Builder
	p.Format(&flat)
	p.WriteFolded(&folded)
	if !strings.Contains(flat.String(), "strategy=token chains=1 open=1") {
		t.Errorf("flat profile header missing counts:\n%s", flat.String())
	}
	for _, want := range []string{
		"kubeshare;token;queue_wait 100000000",
		"kubeshare;token;token_wait 30000000",
		"spans;token;devmgr;bind 100000000",
	} {
		if !strings.Contains(folded.String(), want+"\n") {
			t.Errorf("folded output missing %q:\n%s", want, folded.String())
		}
	}
}

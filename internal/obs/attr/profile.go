// Virtual-time profiler: aggregates a span trace into a flat
// per-(component, op) profile and the chains' phase-level latency
// budget, with a collapsed-stack ("folded") rendering that flamegraph
// tooling consumes directly. All durations are virtual-clock, so a
// profile is byte-identical run-to-run at a fixed seed.
package attr

import (
	"fmt"
	"io"
	"sort"
	"time"

	"kubeshare/internal/obs"
)

// ProfileEntry is one (component, op) row of the flat profile.
type ProfileEntry struct {
	Component string
	Op        string
	// Count is the number of closed spans aggregated; Open counts the
	// in-flight spans excluded from the time columns (an open span's
	// zero duration would otherwise skew every mean downward).
	Count int
	Open  int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the entry's mean closed-span duration.
func (e ProfileEntry) Mean() time.Duration {
	if e.Count == 0 {
		return 0
	}
	return e.Total / time.Duration(e.Count)
}

// Profile is the aggregate view of one run's trace: the flat span
// profile plus the chain-level phase budget from Analyze.
type Profile struct {
	// Strategy tags the run's sharing strategy ("token", "mps",
	// "replica") — the third key of the per-(component, op, strategy)
	// aggregation; the caller supplies it since a trace does not carry
	// run configuration.
	Strategy string
	// Entries is the flat profile, sorted by (component, op).
	Entries []ProfileEntry
	// Phases sums each attribution phase over every completed chain.
	Phases map[Phase]time.Duration
	// Chains and OpenChains count completed and open sharePod chains.
	Chains     int
	OpenChains int
}

// BuildProfile aggregates spans into a Profile tagged with the run's
// sharing strategy (empty defaults to "default").
func BuildProfile(spans []obs.Span, strategy string) *Profile {
	if strategy == "" {
		strategy = "default"
	}
	byKey := map[[2]string]*ProfileEntry{}
	for _, s := range spans {
		k := [2]string{s.Component, s.Op}
		e := byKey[k]
		if e == nil {
			e = &ProfileEntry{Component: s.Component, Op: s.Op}
			byKey[k] = e
		}
		if s.Open() {
			e.Open++
			continue
		}
		e.Count++
		e.Total += s.Duration()
		if d := s.Duration(); d > e.Max {
			e.Max = d
		}
	}
	p := &Profile{Strategy: strategy, Phases: map[Phase]time.Duration{}}
	for _, e := range byKey {
		p.Entries = append(p.Entries, *e)
	}
	sort.Slice(p.Entries, func(i, j int) bool {
		a, b := p.Entries[i], p.Entries[j]
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Op < b.Op
	})
	res := Analyze(spans)
	p.Chains = len(res.Breakdowns)
	p.OpenChains = len(res.Open)
	for _, bd := range res.Breakdowns {
		for ph, d := range bd.Phases {
			p.Phases[ph] += d
		}
	}
	return p
}

// Format writes the profile as stable text: the chain-phase budget
// first (the "where did my latency go" answer), then the flat
// per-(component, op) table.
func (p *Profile) Format(w io.Writer) {
	fmt.Fprintf(w, "profile strategy=%s chains=%d open=%d\n", p.Strategy, p.Chains, p.OpenChains)
	fmt.Fprintf(w, "--- phase budget (sum over %d completed chains) ---\n", p.Chains)
	var total time.Duration
	for _, ph := range Phases {
		total += p.Phases[ph]
	}
	for _, ph := range Phases {
		d := p.Phases[ph]
		share := 0.0
		if total > 0 {
			share = float64(d) / float64(total) * 100
		}
		fmt.Fprintf(w, "%-12s %12.6fs %5.1f%%\n", ph, d.Seconds(), share)
	}
	fmt.Fprintf(w, "%-12s %12.6fs\n", "total", total.Seconds())
	fmt.Fprintf(w, "--- span profile (component/op, closed spans) ---\n")
	for _, e := range p.Entries {
		fmt.Fprintf(w, "%-16s %-14s count=%-6d open=%-4d total=%.6fs mean=%.6fs max=%.6fs\n",
			e.Component, e.Op, e.Count, e.Open,
			e.Total.Seconds(), e.Mean().Seconds(), e.Max.Seconds())
	}
}

// WriteFolded writes the profile in collapsed-stack format — one
// "frame;frame;frame value" line per stack, values in nanoseconds of
// virtual time — which flamegraph.pl and speedscope consume directly.
// The chain phases fold under kubeshare;<strategy>;<phase>, the raw
// span totals under spans;<strategy>;<component>;<op>.
func (p *Profile) WriteFolded(w io.Writer) {
	for _, ph := range Phases {
		if d := p.Phases[ph]; d > 0 {
			fmt.Fprintf(w, "kubeshare;%s;%s %d\n", p.Strategy, ph, d.Nanoseconds())
		}
	}
	for _, e := range p.Entries {
		if e.Total > 0 {
			fmt.Fprintf(w, "spans;%s;%s;%s %d\n", p.Strategy, e.Component, e.Op, e.Total.Nanoseconds())
		}
	}
}

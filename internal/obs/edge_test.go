package obs

import (
	"math"
	"sync"
	"testing"

	"kubeshare/internal/sim"
)

// TestQuantileBucketBoundaries pins the percentile interpolation exactly at
// bucket edges, where off-by-one errors in the cumulative walk hide.
func TestQuantileBucketBoundaries(t *testing.T) {
	env := sim.NewEnv()

	// An observation exactly on a bound lands in the bucket that bound
	// closes (Prometheus `le` semantics), so a single observation at
	// bounds[1] interpolates inside (bounds[0], bounds[1]].
	h := New(env).Histogram("edge")
	h.Observe(0.002) // == bounds[1]
	s := h.snapshot("edge")
	if got, want := s.Quantile(0.5), 0.0015; math.Abs(got-want) > 1e-12 {
		t.Fatalf("p50 of one boundary observation = %v, want bucket midpoint %v", got, want)
	}
	if got, want := s.Quantile(1.0), 0.002; math.Abs(got-want) > 1e-12 {
		t.Fatalf("p100 = %v, want the closing bound %v", got, want)
	}

	// With the mass split evenly across two adjacent buckets, the median
	// target falls exactly on the cumulative boundary between them and must
	// resolve to the shared bound — not to the far edge of either bucket.
	h2 := New(env).Histogram("split")
	for _, v := range []float64{0.0005, 0.001, 0.0015, 0.002} {
		h2.Observe(v)
	}
	s2 := h2.snapshot("split")
	if got := s2.Quantile(0.5); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("p50 at cumulative boundary = %v, want shared bound 0.001", got)
	}
	if got := s2.Quantile(0.75); math.Abs(got-0.0015) > 1e-12 {
		t.Fatalf("p75 = %v, want midpoint of second bucket 0.0015", got)
	}
	if got := s2.Quantile(0); got != 0 {
		t.Fatalf("p0 = %v, want the first bucket's lower edge 0", got)
	}

	// Empty buckets between populated ones are skipped, not interpolated
	// across: with mass in buckets 0 and 5 only, everything above the first
	// bucket's share resolves inside bucket 5.
	h3 := New(env).Histogram("gap")
	h3.Observe(0.0005) // bucket 0, le 0.001
	h3.Observe(0.05)   // bucket 5, le 0.064
	s3 := h3.snapshot("gap")
	if got := s3.Quantile(0.5); math.Abs(got-0.001) > 1e-12 {
		t.Fatalf("p50 = %v, want first bucket's closing bound 0.001", got)
	}
	p99 := s3.Quantile(0.99)
	if p99 <= 0.032 || p99 > 0.064 {
		t.Fatalf("p99 = %v, want inside the (0.032, 0.064] bucket", p99)
	}
}

// TestLabeledFamilyConcurrentLookup hammers family lookup and child updates
// from many goroutines; run under -race (check.sh forces GOMAXPROCS=4) it
// verifies the interning path is safe off the simulation goroutine, and the
// final snapshot proves no increments were lost or double-interned.
func TestLabeledFamilyConcurrentLookup(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	vec := rt.CounterVec("kubeshare_test_lookups_total", "gpu_uuid", "tenant")
	gauges := rt.FloatGaugeVec("kubeshare_test_ratio", "gpu_uuid")
	hists := rt.HistogramVec("kubeshare_test_wait_seconds", "gpu_uuid")

	gpus := []string{"GPU-a", "GPU-b", "GPU-c"}
	tenants := []string{"t0", "t1", "t2", "t3"}
	const workers = 8
	const perWorker = 500

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g := gpus[(w+i)%len(gpus)]
				tn := tenants[i%len(tenants)]
				vec.With(g, tn).Inc()
				gauges.With(g).Set(float64(i) / perWorker)
				hists.With(g).Observe(float64(i%10) / 100)
			}
		}(w)
	}
	wg.Wait()

	snap := rt.Snapshot()
	total := int64(0)
	children := 0
	for _, c := range snap.Counters {
		if c.Name == "kubeshare_test_lookups_total" {
			children++
			total += c.Value
		}
	}
	if want := len(gpus) * len(tenants); children != want {
		t.Fatalf("interned %d children, want %d (duplicate or lost label sets)", children, want)
	}
	if want := int64(workers * perWorker); total != want {
		t.Fatalf("summed count = %d, want %d", total, want)
	}
	if got, ok := snap.Histogram("kubeshare_test_wait_seconds"); !ok || got.Count != workers*perWorker {
		t.Fatalf("merged histogram count = %+v", got)
	}
}

package obs

import (
	"fmt"
	"io"
	"time"
)

// Event types, mirroring Kubernetes.
const (
	EventNormal  = "Normal"
	EventWarning = "Warning"
)

// EventRecord is one emitted event: what happened (Reason/Message), to
// which object (Kind/Name), reported by whom (Source), at what virtual
// time. The runtime keeps an ordered in-memory log of every record; a
// Sink (the apiserver, in a full cluster) additionally persists events
// as first-class API objects with dedup counting.
type EventRecord struct {
	Time    time.Duration `json:"time_ns"`
	Kind    string        `json:"kind"`   // involved object kind, e.g. "SharePod", "Node", "GPU"
	Name    string        `json:"name"`   // involved object name
	Type    string        `json:"type"`   // EventNormal or EventWarning
	Reason  string        `json:"reason"` // short CamelCase machine-readable cause
	Source  string        `json:"source"` // emitting component, e.g. "kubelet/node-1"
	Message string        `json:"message"`
}

// Sink receives every event as it is recorded. Implementations persist
// them (the apiserver sink creates/updates api.Event objects).
type Sink interface {
	RecordEvent(EventRecord)
}

// SetEventSink installs the persistence sink. The in-memory log is kept
// regardless, so telemetry consumers see events even without a cluster.
func (r *Runtime) SetEventSink(s Sink) {
	if r != nil {
		r.sink = s
	}
}

// Events returns a copy of the ordered event log.
func (r *Runtime) Events() []EventRecord {
	if r == nil {
		return nil
	}
	out := make([]EventRecord, len(r.events))
	copy(out, r.events)
	return out
}

// Recorder emits events stamped with a fixed source component.
type Recorder struct {
	rt     *Runtime
	source string
}

// EventSource returns a recorder that stamps events with source.
func (r *Runtime) EventSource(source string) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{rt: r, source: source}
}

// Eventf records an event about the object (kind, name).
func (rec *Recorder) Eventf(kind, name, etype, reason, format string, args ...any) {
	if rec == nil {
		return
	}
	e := EventRecord{
		Time: rec.rt.env.Now(),
		Kind: kind, Name: name,
		Type: etype, Reason: reason, Source: rec.source,
		Message: fmt.Sprintf(format, args...),
	}
	rec.rt.events = append(rec.rt.events, e)
	if rec.rt.sink != nil {
		rec.rt.sink.RecordEvent(e)
	}
}

// FormatEvents writes the event log as stable text, one line per event.
func FormatEvents(w io.Writer, evs []EventRecord) {
	for _, e := range evs {
		fmt.Fprintf(w, "[%9.3fs] %-7s %-22s %s/%s (%s) %s\n",
			e.Time.Seconds(), e.Type, e.Reason, e.Kind, e.Name, e.Source, e.Message)
	}
}

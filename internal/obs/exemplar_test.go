package obs

import (
	"strings"
	"testing"

	"kubeshare/internal/sim"
)

// TestExemplarsDisabledByDefault: without EnableExemplars,
// ObserveExemplar records the observation but keeps no exemplar and
// changes nothing about the snapshot or its Format output.
func TestExemplarsDisabledByDefault(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	h := rt.Histogram("kubeshare_test_latency_seconds")
	h.ObserveExemplar(0.2, "SharePod/a", 7)
	snap := rt.Snapshot()
	hs := snap.Histograms[0]
	if hs.Count != 1 {
		t.Fatalf("observation lost: count=%d", hs.Count)
	}
	if hs.Exemplars != nil {
		t.Fatalf("exemplars recorded while disabled: %+v", hs.Exemplars)
	}
	var b strings.Builder
	snap.FormatExemplars(&b)
	if b.String() != "" {
		t.Fatalf("FormatExemplars emitted output while disabled: %q", b.String())
	}
}

// TestExemplarMaxPerBucket: with exemplars on, each bucket keeps the
// max-latency observation's (trace key, span ID), ties going to the
// latest — and the metric values themselves are identical to plain
// Observe calls.
func TestExemplarMaxPerBucket(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	rt.EnableExemplars()
	h := rt.Histogram("kubeshare_test_latency_seconds")
	// 0.15 and 0.19 share the (0.128, 0.256] bucket; 0.01 lands lower.
	h.ObserveExemplar(0.15, "SharePod/a", 3)
	h.ObserveExemplar(0.19, "SharePod/b", 5)
	h.ObserveExemplar(0.01, "SharePod/c", 9)
	hs := rt.Snapshot().Histograms[0]
	if hs.Count != 3 {
		t.Fatalf("count=%d, want 3", hs.Count)
	}
	var got []Exemplar
	for _, e := range hs.Exemplars {
		if e.TraceKey != "" {
			got = append(got, e)
		}
	}
	if len(got) != 2 {
		t.Fatalf("want 2 populated buckets, got %+v", got)
	}
	if got[0].TraceKey != "SharePod/c" || got[0].SpanID != 9 {
		t.Errorf("low bucket exemplar = %+v, want SharePod/c span 9", got[0])
	}
	if got[1].TraceKey != "SharePod/b" || got[1].SpanID != 5 || got[1].Value != 0.19 {
		t.Errorf("high bucket exemplar = %+v, want the max (SharePod/b, 0.19)", got[1])
	}
}

// TestExemplarVecChildren: labeled-family children share the registry
// switch, including children created before the flip, and
// FormatExemplars renders them with their labels.
func TestExemplarVecChildren(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	early := rt.HistogramVec("kubeshare_test_wait_seconds", "gpu_uuid").With("uuid-0")
	rt.EnableExemplars()
	late := rt.HistogramVec("kubeshare_test_wait_seconds", "gpu_uuid").With("uuid-1")
	early.ObserveDurationExemplar(200e6, "SharePod/x", 11) // 0.2s
	late.ObserveDurationExemplar(400e6, "SharePod/y", 12)  // 0.4s
	var b strings.Builder
	rt.Snapshot().FormatExemplars(&b)
	out := b.String()
	for _, want := range []string{
		`kubeshare_test_wait_seconds{gpu_uuid="uuid-0"}`,
		"key=SharePod/x span=#11",
		`kubeshare_test_wait_seconds{gpu_uuid="uuid-1"}`,
		"key=SharePod/y span=#12",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatExemplars missing %q:\n%s", want, out)
		}
	}
}

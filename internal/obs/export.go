package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` header per family
// followed by its samples, histograms expanded into cumulative `_bucket`
// series plus `_sum` and `_count`. The snapshot is already sorted by
// (name, labels), so families come out contiguous and the output is
// byte-deterministic for a seeded run.
func WritePrometheus(w io.Writer, snap MetricsSnapshot) error {
	lastType := ""
	header := func(name, typ string) {
		if name+typ == lastType {
			return
		}
		lastType = name + typ
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	for _, c := range snap.Counters {
		header(c.Name, "counter")
		fmt.Fprintf(w, "%s%s %d\n", c.Name, FormatLabels(c.Labels), c.Value)
	}
	for _, g := range snap.Gauges {
		header(g.Name, "gauge")
		fmt.Fprintf(w, "%s%s %d\n", g.Name, FormatLabels(g.Labels), g.Value)
	}
	for _, f := range snap.Floats {
		header(f.Name, "gauge")
		fmt.Fprintf(w, "%s%s %s\n", f.Name, FormatLabels(f.Labels), formatFloat(f.Value))
	}
	for _, h := range snap.Histograms {
		header(h.Name, "histogram")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, withLE(h.Labels, formatFloat(bound)), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.Name, withLE(h.Labels, "+Inf"), h.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", h.Name, FormatLabels(h.Labels), formatFloat(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, FormatLabels(h.Labels), h.Count)
	}
	return nil
}

// withLE renders labels with the histogram bucket boundary appended as the
// conventional trailing "le" label.
func withLE(labels []Label, le string) string {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	out = append(out, Label{Key: "le", Value: le})
	return FormatLabels(out)
}

// formatFloat renders a float the shortest way that round-trips, matching
// what Prometheus clients emit.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteSpansNDJSON writes one JSON object per span, newline-delimited —
// the offline-tooling export of the causal trace.
func WriteSpansNDJSON(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsNDJSON writes one JSON object per event record,
// newline-delimited.
func WriteEventsNDJSON(w io.Writer, events []EventRecord) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

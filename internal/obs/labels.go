package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension: a key (fixed per family: gpu_uuid, tenant,
// node, pool) and a value drawn from object names or device UUIDs — never
// free-form strings, so family cardinality stays bounded by cluster size.
type Label struct {
	Key   string
	Value string
}

// FormatLabels renders labels Prometheus-style: {k1="v1",k2="v2"}. Empty
// label sets render as "".
func FormatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// family is the shared child-interning machinery behind every *Vec type:
// one metric name, a fixed key schema, and a map from interned label-value
// tuples to child handles. Lookup builds the composite key into a scratch
// buffer under the lock, so a hit (the steady state — call sites cache
// their children, and even uncached lookups repeat the same tuples)
// allocates nothing.
type family struct {
	name string
	keys []string

	mu       sync.Mutex
	children map[string]any
	scratch  []byte
}

func newFamily(name string, keys []string) *family {
	return &family{name: name, keys: keys, children: map[string]any{}}
}

// child interns the label values and returns the cached child, or nil when
// make must be called by the caller to create one. The caller runs under
// f.mu via lookup.
func (f *family) lookup(values []string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Composite key: values joined by 0xff (cannot appear in object names
	// or UUIDs). Built into the reusable scratch buffer; map lookup by
	// string(bytes) does not allocate on hit (compiler optimization).
	f.scratch = f.scratch[:0]
	for i, v := range values {
		if i > 0 {
			f.scratch = append(f.scratch, 0xff)
		}
		f.scratch = append(f.scratch, v...)
	}
	if c, ok := f.children[string(f.scratch)]; ok {
		return c
	}
	c := make()
	f.children[string(f.scratch)] = c
	return c
}

// labelsFor reconstructs the Label slice of one interned child key.
func (f *family) labelsFor(key string) []Label {
	values := strings.Split(key, "\xff")
	out := make([]Label, len(f.keys))
	for i, k := range f.keys {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		out[i] = Label{Key: k, Value: v}
	}
	return out
}

// sortedKeys returns the interned child keys in deterministic order, for
// snapshots.
func (f *family) sortedKeys() []string {
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterVec is a family of counters sharing one name, partitioned by a
// fixed label-key schema.
type CounterVec struct{ f *family }

// With fetches or creates the child counter for the label values, given in
// schema order. Call sites on hot paths cache the returned handle.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.lookup(values, func() any { return &Counter{} }).(*Counter)
}

// Each visits every child with its labels, in deterministic (sorted label)
// order — the read side for consumers that aggregate across a family, like
// the fairness auditor differencing per-tenant hold counters.
func (v *CounterVec) Each(fn func(labels []Label, value int64)) {
	if v == nil {
		return
	}
	v.f.mu.Lock()
	keys := v.f.sortedKeys()
	children := make([]*Counter, len(keys))
	for i, k := range keys {
		children[i] = v.f.children[k].(*Counter)
	}
	v.f.mu.Unlock()
	for i, k := range keys {
		fn(v.f.labelsFor(k), children[i].Value())
	}
}

// GaugeVec is a family of integer gauges.
type GaugeVec struct{ f *family }

// With fetches or creates the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.lookup(values, func() any { return &Gauge{} }).(*Gauge)
}

// FloatGaugeVec is a family of float gauges (ratios: utilization, shares,
// fairness indices).
type FloatGaugeVec struct{ f *family }

// With fetches or creates the child gauge for the label values.
func (v *FloatGaugeVec) With(values ...string) *FloatGauge {
	if v == nil {
		return nil
	}
	return v.f.lookup(values, func() any { return &FloatGauge{} }).(*FloatGauge)
}

// HistogramVec is a family of duration histograms. exOn is the owning
// registry's exemplar switch, threaded into every child so labeled
// histograms record exemplars exactly like flat ones.
type HistogramVec struct {
	f    *family
	exOn *atomic.Bool
}

// With fetches or creates the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.lookup(values, func() any {
		h := newHistogram(defaultBounds())
		h.exOn = v.exOn
		return h
	}).(*Histogram)
}

// vecRegistry interns the *Vec families themselves, one per metric name.
type vecRegistry struct {
	mu   sync.Mutex
	vecs map[string]any
}

func (r *vecRegistry) get(name string, keys []string, make func(*family) any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.vecs == nil {
		r.vecs = map[string]any{}
	}
	if v, ok := r.vecs[name]; ok {
		return v
	}
	v := make(newFamily(name, keys))
	r.vecs[name] = v
	return v
}

// CounterVec fetches or registers a labeled counter family. The label keys
// are fixed at first registration; later fetches pass the same schema.
func (g *Registry) CounterVec(name string, labelKeys ...string) *CounterVec {
	if g == nil {
		return nil
	}
	return g.ctrVecs.get(name, labelKeys, func(f *family) any { return &CounterVec{f: f} }).(*CounterVec)
}

// GaugeVec fetches or registers a labeled gauge family.
func (g *Registry) GaugeVec(name string, labelKeys ...string) *GaugeVec {
	if g == nil {
		return nil
	}
	return g.gaugeVecs.get(name, labelKeys, func(f *family) any { return &GaugeVec{f: f} }).(*GaugeVec)
}

// FloatGaugeVec fetches or registers a labeled float-gauge family.
func (g *Registry) FloatGaugeVec(name string, labelKeys ...string) *FloatGaugeVec {
	if g == nil {
		return nil
	}
	return g.floatVecs.get(name, labelKeys, func(f *family) any { return &FloatGaugeVec{f: f} }).(*FloatGaugeVec)
}

// HistogramVec fetches or registers a labeled histogram family.
func (g *Registry) HistogramVec(name string, labelKeys ...string) *HistogramVec {
	if g == nil {
		return nil
	}
	return g.histVecs.get(name, labelKeys, func(f *family) any { return &HistogramVec{f: f, exOn: &g.exemplars} }).(*HistogramVec)
}

// CounterVec fetches or registers a labeled counter family on the runtime.
func (r *Runtime) CounterVec(name string, labelKeys ...string) *CounterVec {
	return r.Registry().CounterVec(name, labelKeys...)
}

// GaugeVec fetches or registers a labeled gauge family on the runtime.
func (r *Runtime) GaugeVec(name string, labelKeys ...string) *GaugeVec {
	return r.Registry().GaugeVec(name, labelKeys...)
}

// FloatGaugeVec fetches or registers a labeled float-gauge family on the
// runtime.
func (r *Runtime) FloatGaugeVec(name string, labelKeys ...string) *FloatGaugeVec {
	return r.Registry().FloatGaugeVec(name, labelKeys...)
}

// HistogramVec fetches or registers a labeled histogram family on the
// runtime.
func (r *Runtime) HistogramVec(name string, labelKeys ...string) *HistogramVec {
	return r.Registry().HistogramVec(name, labelKeys...)
}

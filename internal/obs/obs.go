// Package obs is the shared telemetry runtime every layer of the
// simulated cluster is instrumented with: a metric registry
// (counters/gauges/histograms), a span tracer with causal parent links
// (trace.go), and a Kubernetes-style event recorder (events.go). All
// timestamps are virtual — read from the owning sim.Env clock — so a
// seeded run produces a byte-identical telemetry stream.
//
// The runtime is nil-tolerant end to end: a nil *Runtime hands out nil
// handles, and every handle method no-ops on a nil receiver. Call sites
// therefore instrument unconditionally; "observability off" is just a
// nil runtime (the BENCH.json obs_overhead A/B lever).
//
// Counters and gauges are atomics so snapshot reads like
// Sched.Stats() are safe from outside the env goroutine
// while the control loops run. The tracer and event log are env-confined
// (single writer) and meant to be read once the run has stopped.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kubeshare/internal/sim"
)

// Runtime bundles the registry, tracer and event log for one simulated
// cluster. One Runtime is shared by every component of a cluster so
// cross-layer series land in a single namespace and one causal trace.
type Runtime struct {
	env    *sim.Env
	reg    *Registry
	tracer *Tracer

	events []EventRecord
	sink   Sink
}

// New creates an enabled runtime on env's virtual clock.
func New(env *sim.Env) *Runtime {
	r := &Runtime{
		env:    env,
		reg:    newRegistry(),
		tracer: newTracer(env),
	}
	// The drop counter registers on first drop, not eagerly: runs that
	// never hit the span cap (every golden run) keep their metric
	// namespace byte-identical to before the cap existed.
	r.tracer.onDrop = func() {
		r.reg.Counter("kubeshare_obs_spans_dropped_total").Inc()
	}
	return r
}

// EnableExemplars turns on exemplar recording for every histogram of
// this runtime's registry; no-op on a disabled runtime.
func (r *Runtime) EnableExemplars() {
	if r != nil {
		r.reg.EnableExemplars()
	}
}

// Env returns the clock the runtime stamps telemetry with.
func (r *Runtime) Env() *sim.Env {
	if r == nil {
		return nil
	}
	return r.env
}

// Registry returns the metric registry, or nil on a disabled runtime.
func (r *Runtime) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Tracer returns the span tracer, or nil on a disabled runtime.
func (r *Runtime) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Counter fetches or registers the named counter.
func (r *Runtime) Counter(name string) *Counter { return r.Registry().Counter(name) }

// Gauge fetches or registers the named gauge.
func (r *Runtime) Gauge(name string) *Gauge { return r.Registry().Gauge(name) }

// Histogram fetches or registers the named duration histogram.
func (r *Runtime) Histogram(name string) *Histogram { return r.Registry().Histogram(name) }

// Snapshot captures the registry; zero value on a disabled runtime.
func (r *Runtime) Snapshot() MetricsSnapshot {
	if r == nil {
		return MetricsSnapshot{}
	}
	return r.reg.Snapshot()
}

// Registry owns the metric namespace. Handles are registered on first
// use and cached by the instrumented components; registration takes a
// lock, updates are lock-free atomics. Flat metrics (no labels) live in
// the maps here; labeled families (see labels.go) are interned per name
// in the vec registries.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram

	ctrVecs   vecRegistry
	gaugeVecs vecRegistry
	floatVecs vecRegistry
	histVecs  vecRegistry

	// exemplars is the registry-wide exemplar switch: every histogram
	// (flat or vec child, created before or after the flip) shares this
	// flag, so attribution-enabled runs record exemplars and everything
	// else pays a single atomic load per ObserveExemplar.
	exemplars atomic.Bool
}

// EnableExemplars turns on exemplar recording for every histogram in
// the registry.
func (g *Registry) EnableExemplars() {
	if g != nil {
		g.exemplars.Store(true)
	}
}

// ExemplarsEnabled reports whether exemplar recording is on.
func (g *Registry) ExemplarsEnabled() bool {
	return g != nil && g.exemplars.Load()
}

func newRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter fetches or registers a monotonically increasing counter.
func (g *Registry) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.ctrs[name]
	if c == nil {
		c = &Counter{}
		g.ctrs[name] = c
	}
	return c
}

// Gauge fetches or registers an integer-valued gauge.
func (g *Registry) Gauge(name string) *Gauge {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.gauges[name]
	if v == nil {
		v = &Gauge{}
		g.gauges[name] = v
	}
	return v
}

// Histogram fetches or registers a duration histogram over the default
// exponential latency buckets.
func (g *Registry) Histogram(name string) *Histogram {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	h := g.hists[name]
	if h == nil {
		h = newHistogram(defaultBounds())
		h.exOn = &g.exemplars
		g.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Value reads the current count; 0 on a nil handle.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// FloatGauge is a float instantaneous value (ratios: utilization, token
// shares, fairness indices). Stored as float64 bits in an atomic.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge; 0 on a nil handle.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge is an integer instantaneous value (queue depths, active watches).
type Gauge struct{ n atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.n.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.n.Add(d)
	}
}

// Value reads the gauge; 0 on a nil handle.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// Histogram accumulates duration observations into exponential buckets.
// Bounds are upper bounds in seconds; one extra overflow bucket catches
// the tail. Sum/count allow exact means, Quantile interpolates.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated

	// Exemplar state: exOn is the owning registry's switch (nil on
	// hand-built histograms); ex holds the max-latency exemplar per
	// bucket, allocated on first recording so disabled runs pay nothing.
	exOn *atomic.Bool
	exMu sync.Mutex
	ex   []Exemplar
}

// Exemplar links one histogram bucket to the trace behind its largest
// observation: the span chain key (e.g. "SharePod/job-003"), the ID of
// the span that closed with that latency (0 when the observation has no
// span, like devlib token waits), and the observed value in seconds.
type Exemplar struct {
	TraceKey string
	SpanID   int64
	Value    float64
}

// defaultBounds covers 1ms .. ~524s doubling per bucket — wide enough
// for bind latencies (~100ms), scheduling waits (seconds under load) and
// token waits (ms to minutes under heavy sharing).
func defaultBounds() []float64 {
	b := make([]float64, 20)
	v := 0.001
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records a value in seconds.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a virtual duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records a value and, when the registry's exemplar
// switch is on, keeps (traceKey, spanID) as the bucket's exemplar if the
// value is the largest seen there — so a p99 bucket links straight to
// the trace of its worst observation. Ties prefer the latest
// observation, which is deterministic under the single-threaded env.
func (h *Histogram) ObserveExemplar(v float64, traceKey string, spanID int64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if h.exOn == nil || !h.exOn.Load() || traceKey == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = make([]Exemplar, len(h.counts))
	}
	if e := &h.ex[i]; e.TraceKey == "" || v >= e.Value {
		*e = Exemplar{TraceKey: traceKey, SpanID: spanID, Value: v}
	}
	h.exMu.Unlock()
}

// ObserveDurationExemplar is ObserveExemplar for a virtual duration.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceKey string, spanID int64) {
	h.ObserveExemplar(d.Seconds(), traceKey, spanID)
}

// snapshot captures the histogram state.
func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   name,
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	h.exMu.Lock()
	if h.ex != nil {
		s.Exemplars = append([]Exemplar(nil), h.ex...)
	}
	h.exMu.Unlock()
	return s
}

// CounterValue is one counter in a snapshot. Labels is nil for flat
// counters and carries the child's label set for labeled families.
type CounterValue struct {
	Name   string
	Labels []Label
	Value  int64
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name   string
	Labels []Label
	Value  int64
}

// FloatGaugeValue is one float gauge in a snapshot.
type FloatGaugeValue struct {
	Name   string
	Labels []Label
	Value  float64
}

// HistogramSnapshot is one histogram in a snapshot. Counts has one entry
// per bound plus a final overflow bucket. Exemplars, when non-nil, is
// parallel to Counts: the max-latency exemplar captured per bucket
// (zero-valued entries mean the bucket has none).
type HistogramSnapshot struct {
	Name      string
	Labels    []Label
	Count     int64
	Sum       float64
	Bounds    []float64
	Counts    []int64
	Exemplars []Exemplar
}

// Mean returns the exact mean of all observations in seconds.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (0..1) in seconds by linear
// interpolation within the bucket holding the target rank; observations
// in the overflow bucket report the largest bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	cum := int64(0)
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < target || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		frac := (target - float64(prev)) / float64(c)
		return lo + (h.Bounds[i]-lo)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// MetricsSnapshot is a point-in-time copy of the registry, sorted by
// metric name (then label values) so serialization is deterministic.
// Labeled families contribute one entry per child.
type MetricsSnapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Floats     []FloatGaugeValue
	Histograms []HistogramSnapshot
}

// Snapshot captures every registered metric, flat and labeled, sorted by
// name then label values.
func (g *Registry) Snapshot() MetricsSnapshot {
	if g == nil {
		return MetricsSnapshot{}
	}
	var s MetricsSnapshot
	g.mu.Lock()
	for name, c := range g.ctrs {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, v := range g.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: v.Value()})
	}
	for name, h := range g.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	g.mu.Unlock()
	g.ctrVecs.visit(func(v any) {
		f := v.(*CounterVec).f
		f.mu.Lock()
		for _, key := range f.sortedKeys() {
			s.Counters = append(s.Counters, CounterValue{
				Name: f.name, Labels: f.labelsFor(key),
				Value: f.children[key].(*Counter).Value(),
			})
		}
		f.mu.Unlock()
	})
	g.gaugeVecs.visit(func(v any) {
		f := v.(*GaugeVec).f
		f.mu.Lock()
		for _, key := range f.sortedKeys() {
			s.Gauges = append(s.Gauges, GaugeValue{
				Name: f.name, Labels: f.labelsFor(key),
				Value: f.children[key].(*Gauge).Value(),
			})
		}
		f.mu.Unlock()
	})
	g.floatVecs.visit(func(v any) {
		f := v.(*FloatGaugeVec).f
		f.mu.Lock()
		for _, key := range f.sortedKeys() {
			s.Floats = append(s.Floats, FloatGaugeValue{
				Name: f.name, Labels: f.labelsFor(key),
				Value: f.children[key].(*FloatGauge).Value(),
			})
		}
		f.mu.Unlock()
	})
	g.histVecs.visit(func(v any) {
		f := v.(*HistogramVec).f
		f.mu.Lock()
		for _, key := range f.sortedKeys() {
			hs := f.children[key].(*Histogram).snapshot(f.name)
			hs.Labels = f.labelsFor(key)
			s.Histograms = append(s.Histograms, hs)
		}
		f.mu.Unlock()
	})
	byID := func(n1 string, l1 []Label, n2 string, l2 []Label) bool {
		if n1 != n2 {
			return n1 < n2
		}
		return FormatLabels(l1) < FormatLabels(l2)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return byID(s.Counters[i].Name, s.Counters[i].Labels, s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return byID(s.Gauges[i].Name, s.Gauges[i].Labels, s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Floats, func(i, j int) bool {
		return byID(s.Floats[i].Name, s.Floats[i].Labels, s.Floats[j].Name, s.Floats[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return byID(s.Histograms[i].Name, s.Histograms[i].Labels, s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

// visit calls fn for every registered vec in name order.
func (r *vecRegistry) visit(fn func(any)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.vecs))
	for n := range r.vecs {
		names = append(names, n)
	}
	sort.Strings(names)
	vecs := make([]any, len(names))
	for i, n := range names {
		vecs[i] = r.vecs[n]
	}
	r.mu.Unlock()
	for _, v := range vecs {
		fn(v)
	}
}

// Counter sums a counter family by name — a flat counter contributes its
// single value, a labeled family the sum over its children; 0 if absent.
func (s MetricsSnapshot) Counter(name string) int64 {
	var sum int64
	for _, c := range s.Counters {
		if c.Name == name {
			sum += c.Value
		}
	}
	return sum
}

// CounterWith looks up one labeled child's value; 0 if absent.
func (s MetricsSnapshot) CounterWith(name string, labels ...Label) int64 {
	want := FormatLabels(labels)
	for _, c := range s.Counters {
		if c.Name == name && FormatLabels(c.Labels) == want {
			return c.Value
		}
	}
	return 0
}

// Gauge sums a gauge family by name (flat gauges contribute their single
// value); 0 if absent.
func (s MetricsSnapshot) Gauge(name string) int64 {
	var sum int64
	for _, g := range s.Gauges {
		if g.Name == name {
			sum += g.Value
		}
	}
	return sum
}

// FloatWith looks up one labeled float-gauge child's value; 0 if absent.
func (s MetricsSnapshot) FloatWith(name string, labels ...Label) float64 {
	want := FormatLabels(labels)
	for _, f := range s.Floats {
		if f.Name == name && FormatLabels(f.Labels) == want {
			return f.Value
		}
	}
	return 0
}

// Histogram merges a histogram family by name: a flat histogram returns
// as-is, a labeled family returns the bucket-wise sum over its children
// (all children share the default bounds).
func (s MetricsSnapshot) Histogram(name string) (HistogramSnapshot, bool) {
	var merged HistogramSnapshot
	found := false
	for _, h := range s.Histograms {
		if h.Name != name {
			continue
		}
		if !found {
			merged = HistogramSnapshot{Name: name, Bounds: h.Bounds, Counts: append([]int64(nil), h.Counts...)}
			merged.Count, merged.Sum = h.Count, h.Sum
			found = true
			continue
		}
		merged.Count += h.Count
		merged.Sum += h.Sum
		for i := range h.Counts {
			merged.Counts[i] += h.Counts[i]
		}
	}
	return merged, found
}

// Format writes the snapshot as stable, diff-friendly text: one line per
// metric in name order, labels rendered Prometheus-style.
func (s MetricsSnapshot) Format(w io.Writer) {
	for _, c := range s.Counters {
		fmt.Fprintf(w, "counter %s%s %d\n", c.Name, FormatLabels(c.Labels), c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "gauge %s%s %d\n", g.Name, FormatLabels(g.Labels), g.Value)
	}
	for _, f := range s.Floats {
		fmt.Fprintf(w, "floatgauge %s%s %.6f\n", f.Name, FormatLabels(f.Labels), f.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "histogram %s%s count=%d sum=%.6fs p50=%.6fs p99=%.6fs\n",
			h.Name, FormatLabels(h.Labels), h.Count, h.Sum, h.Quantile(0.50), h.Quantile(0.99))
	}
}

// FormatExemplars writes every recorded exemplar as stable text, one
// line per populated bucket in metric order — the link from a latency
// bucket to the exact trace (chain key + span ID) behind its worst
// observation. Histograms without exemplars contribute nothing, so the
// plain Format output is unchanged by exemplar recording.
func (s MetricsSnapshot) FormatExemplars(w io.Writer) {
	for _, h := range s.Histograms {
		for i, e := range h.Exemplars {
			if e.TraceKey == "" {
				continue
			}
			le := "+inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			fmt.Fprintf(w, "exemplar %s%s le=%s value=%.6fs key=%s span=#%d\n",
				h.Name, FormatLabels(h.Labels), le, e.Value, e.TraceKey, e.SpanID)
		}
	}
}

package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"kubeshare/internal/sim"
)

func TestNilRuntimeNoOps(t *testing.T) {
	var rt *Runtime
	// Every path must be callable on a nil runtime / nil handles.
	rt.Counter("c").Inc()
	rt.Counter("c").Add(3)
	rt.Gauge("g").Set(7)
	rt.Gauge("g").Add(1)
	rt.Histogram("h").Observe(0.5)
	rt.Histogram("h").ObserveDuration(time.Second)
	rt.Tracer().Mark("x", "y", "k", "")
	rt.Tracer().Record("x", "y", "k", "", 0)
	ref := rt.Tracer().Start("x", "y", "k")
	ref.End()
	ref.EndNote("note %d", 1)
	rt.EventSource("src").Eventf("Kind", "name", EventNormal, "Reason", "msg")
	rt.SetEventSink(nil)
	if rt.Counter("c").Value() != 0 || rt.Gauge("g").Value() != 0 {
		t.Fatal("nil handles returned nonzero values")
	}
	if rt.Tracer().Len() != 0 || len(rt.Tracer().Spans()) != 0 || len(rt.Events()) != 0 {
		t.Fatal("nil runtime recorded telemetry")
	}
	s := rt.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil runtime produced a non-empty snapshot")
	}
}

func TestRegistryHandlesAndSnapshot(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	c := rt.Counter("b_total")
	if c2 := rt.Counter("b_total"); c2 != c {
		t.Fatal("same name returned a different counter")
	}
	c.Inc()
	c.Add(2)
	rt.Counter("a_total").Inc()
	rt.Gauge("depth").Set(5)
	rt.Histogram("lat_seconds").Observe(0.0015)

	s := rt.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_total" || s.Counters[1].Name != "b_total" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Counter("b_total") != 3 || s.Counter("missing") != 0 {
		t.Fatalf("counter lookup: %+v", s.Counters)
	}
	if s.Gauge("depth") != 5 {
		t.Fatalf("gauge lookup: %+v", s.Gauges)
	}
	h, ok := s.Histogram("lat_seconds")
	if !ok || h.Count != 1 {
		t.Fatalf("histogram lookup: %+v", s.Histograms)
	}
	var buf bytes.Buffer
	s.Format(&buf)
	out := buf.String()
	for _, want := range []string{"counter a_total 1", "counter b_total 3", "gauge depth 5", "histogram lat_seconds count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	env := sim.NewEnv()
	h := New(env).Histogram("h")
	// 100 observations spread evenly over 0..1s.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.snapshot("h")
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if m := s.Mean(); math.Abs(m-0.495) > 0.001 {
		t.Fatalf("mean = %v", m)
	}
	p50 := s.Quantile(0.5)
	if p50 < 0.25 || p50 > 0.75 {
		t.Fatalf("p50 = %v, want ≈0.5", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < p50 || p99 > 1.1 {
		t.Fatalf("p99 = %v", p99)
	}
	// Overflow: beyond the largest bound reports the largest bound.
	h2 := New(env).Histogram("h2")
	h2.Observe(1e9)
	s2 := h2.snapshot("h2")
	if got := s2.Quantile(0.5); got != s2.Bounds[len(s2.Bounds)-1] {
		t.Fatalf("overflow quantile = %v", got)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile nonzero")
	}
}

func TestTracerCausalChains(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	tr := rt.Tracer()

	tr.Mark("apiserver", "create", "SharePod/x", "")
	var ref SpanRef
	env.Go("worker", func(p *sim.Proc) {
		ref = tr.Start("devmgr", "bind", "SharePod/x")
		tr.Mark("apiserver", "create", "Pod/other", "") // unrelated chain
		p.Sleep(100 * time.Millisecond)
		ref.EndNote("pod=%s", "x-pod-0")
		tr.Mark("kubelet", "pod-sync", "SharePod/x", "")
	})
	env.Run()

	all := tr.Spans()
	if len(all) != 4 {
		t.Fatalf("spans = %d", len(all))
	}
	chain := Chain(all, "SharePod/x")
	if len(chain) != 3 {
		t.Fatalf("chain = %+v", chain)
	}
	if chain[0].Parent != 0 || chain[1].Parent != chain[0].ID || chain[2].Parent != chain[1].ID {
		t.Fatalf("parent links broken: %+v", chain)
	}
	bind := chain[1]
	if bind.Open() || bind.Duration() != 100*time.Millisecond || bind.Note != "pod=x-pod-0" {
		t.Fatalf("bind span = %+v", bind)
	}
	// The unrelated chain roots independently.
	if other := Chain(all, "Pod/other"); len(other) != 1 || other[0].Parent != 0 {
		t.Fatalf("other chain = %+v", other)
	}

	var buf bytes.Buffer
	FormatSpans(&buf, chain)
	if !strings.Contains(buf.String(), "devmgr/bind SharePod/x pod=x-pod-0") {
		t.Fatalf("FormatSpans output:\n%s", buf.String())
	}
}

func TestTracerOpenSpan(t *testing.T) {
	env := sim.NewEnv()
	tr := New(env).Tracer()
	tr.Start("kubelet", "pod-sync", "Pod/p") // never ended
	sp := tr.Spans()[0]
	if !sp.Open() || sp.Duration() != 0 {
		t.Fatalf("span = %+v", sp)
	}
	var buf bytes.Buffer
	FormatSpans(&buf, tr.Spans())
	if !strings.Contains(buf.String(), "open") {
		t.Fatalf("open span not rendered: %s", buf.String())
	}
}

type captureSink struct{ got []EventRecord }

func (c *captureSink) RecordEvent(e EventRecord) { c.got = append(c.got, e) }

func TestEventsLogAndSink(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	sink := &captureSink{}
	rt.SetEventSink(sink)
	env.Go("emitter", func(p *sim.Proc) {
		p.Sleep(time.Second)
		rt.EventSource("kubelet/node-0").Eventf("Pod", "p1", EventWarning, "FailedStart", "exit %d", 3)
	})
	env.Run()
	evs := rt.Events()
	if len(evs) != 1 || len(sink.got) != 1 {
		t.Fatalf("events = %d, sink = %d", len(evs), len(sink.got))
	}
	e := evs[0]
	if e.Time != time.Second || e.Kind != "Pod" || e.Name != "p1" ||
		e.Type != EventWarning || e.Reason != "FailedStart" ||
		e.Source != "kubelet/node-0" || e.Message != "exit 3" {
		t.Fatalf("event = %+v", e)
	}
	var buf bytes.Buffer
	FormatEvents(&buf, evs)
	if !strings.Contains(buf.String(), "FailedStart") || !strings.Contains(buf.String(), "Pod/p1") {
		t.Fatalf("FormatEvents output: %s", buf.String())
	}
}

package obs

import (
	"fmt"
	"io"
	"time"

	"kubeshare/internal/sim"
)

// Span is one operation in the causal trace. Spans carry a chain key —
// "SharePod/train-3", "Pod/train-3-pod-1" — and every span's Parent is
// the span that last touched the same key, so a key's spans form a
// causal chain across layers: the apiserver's submit mark parents the
// scheduler's decision span, which parents DevMgr's bind, down to the
// device library's first token grant. IDs are sequential in recording
// order; since a sim env is single-threaded, the whole trace is
// deterministic for a given seed.
type Span struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent"` // 0 = chain root
	Key    string `json:"key"`
	// Component is the emitting layer: apiserver, kube-scheduler,
	// kubeshare-sched, kubelet, devmgr, devlib, gpusim, chaos.
	Component string        `json:"component"`
	Op        string        `json:"op"`
	Note      string        `json:"note,omitempty"`
	Start     time.Duration `json:"start_ns"`
	End       time.Duration `json:"end_ns"` // openEnd while the operation is in flight
}

// openEnd marks a span whose End() has not run (operation still in
// flight when the trace was read).
const openEnd = time.Duration(-1)

// Open reports whether the span was still in flight.
func (s Span) Open() bool { return s.End == openEnd }

// Duration returns End-Start, or 0 for open spans.
func (s Span) Duration() time.Duration {
	if s.Open() {
		return 0
	}
	return s.End - s.Start
}

// DefaultSpanCap bounds the retained span buffer. A 100k-sharePod fig16
// sweep records ~7 spans per chain, comfortably under the cap; the bound
// exists so a runaway or adversarial workload degrades to dropped spans
// (counted in kubeshare_obs_spans_dropped_total) instead of unbounded
// trace memory.
const DefaultSpanCap = 1 << 20

// Tracer records spans on the env's virtual clock. It is env-confined:
// all writes happen on the simulation goroutine, reads after the run.
type Tracer struct {
	env     *sim.Env
	spans   []Span
	heads   map[string]int64 // key -> last span ID on that chain
	cap     int              // max retained spans; <= 0 means unbounded
	dropped int64
	onDrop  func() // bumps the drop counter; registered lazily by Runtime
}

func newTracer(env *sim.Env) *Tracer {
	return &Tracer{env: env, heads: map[string]int64{}, cap: DefaultSpanCap}
}

// SetSpanCap bounds the span buffer to n spans; once full, further spans
// are dropped (and counted) rather than recorded. n <= 0 removes the
// bound — the setting for golden runs, which must retain every span.
func (t *Tracer) SetSpanCap(n int) {
	if t != nil {
		t.cap = n
	}
}

// Dropped returns the number of spans discarded at the cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// push appends a span, linking it under the key's current head. At the
// cap it drops the span and returns 0 — the zero SpanRef/parent ID, so
// chains simply stop growing and End on a dropped span no-ops.
func (t *Tracer) push(component, op, key, note string, start, end time.Duration) int64 {
	if t.cap > 0 && len(t.spans) >= t.cap {
		t.dropped++
		if t.onDrop != nil {
			t.onDrop()
		}
		return 0
	}
	id := int64(len(t.spans)) + 1
	t.spans = append(t.spans, Span{
		ID: id, Parent: t.heads[key], Key: key,
		Component: component, Op: op, Note: note,
		Start: start, End: end,
	})
	t.heads[key] = id
	return id
}

// Start opens a span on key's chain and returns a handle to close it.
func (t *Tracer) Start(component, op, key string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	now := t.env.Now()
	return SpanRef{t: t, id: t.push(component, op, key, "", now, openEnd)}
}

// Mark records an instantaneous span (a milestone) on key's chain.
func (t *Tracer) Mark(component, op, key, note string) {
	if t == nil {
		return
	}
	now := t.env.Now()
	t.push(component, op, key, note, now, now)
}

// Record appends an already-finished span that started at start and
// ends now — for callers that only know the outcome after the fact
// (e.g. a scheduling cycle that spans many candidates). It returns the
// span's ID (0 if the span was dropped at the cap) so the caller can
// attach it to a histogram exemplar.
func (t *Tracer) Record(component, op, key, note string, start time.Duration) int64 {
	if t == nil {
		return 0
	}
	return t.push(component, op, key, note, start, t.env.Now())
}

// Spans returns a copy of every recorded span in ID order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// SpanRef is a handle to an open span. The zero value (from a nil
// tracer, or a span dropped at the buffer cap) no-ops.
type SpanRef struct {
	t  *Tracer
	id int64
}

// ID returns the referenced span's ID, or 0 for a no-op handle — the
// value exemplars carry to link a histogram bucket back to its span.
func (r SpanRef) ID() int64 { return r.id }

// End closes the span at the current virtual time.
func (r SpanRef) End() { r.EndNote("") }

// EndNote closes the span and attaches a note.
func (r SpanRef) EndNote(format string, args ...any) {
	if r.t == nil || r.id == 0 {
		return
	}
	sp := &r.t.spans[r.id-1]
	sp.End = r.t.env.Now()
	if format != "" {
		sp.Note = fmt.Sprintf(format, args...)
	}
}

// Chain extracts key's causal chain: all spans recorded on that key, in
// order. Parent links within the result point at the previous element
// (or 0 for the root), which Sim.Trace consumers rely on to reconstruct
// a sharePod's life.
func Chain(spans []Span, key string) []Span {
	var out []Span
	for _, s := range spans {
		if s.Key == key {
			out = append(out, s)
		}
	}
	return out
}

// FormatSpans writes spans as stable text, one line per span:
//
//	[   12.345s +0.100s] #7<-#5 devmgr/bind SharePod/train-3 pod=train-3-pod-1
func FormatSpans(w io.Writer, spans []Span) {
	for _, s := range spans {
		dur := "open"
		if !s.Open() {
			dur = fmt.Sprintf("+%.3fs", s.Duration().Seconds())
		}
		line := fmt.Sprintf("[%9.3fs %7s] #%d<-#%d %s/%s %s",
			s.Start.Seconds(), dur, s.ID, s.Parent, s.Component, s.Op, s.Key)
		if s.Note != "" {
			line += " " + s.Note
		}
		fmt.Fprintln(w, line)
	}
}

package obs

import (
	"testing"

	"kubeshare/internal/sim"
)

// TestSpanCap: once the buffer reaches the cap, further spans are
// dropped and counted — in the tracer and, lazily, in the
// kubeshare_obs_spans_dropped_total counter — and handles to dropped
// spans no-op instead of corrupting the buffer.
func TestSpanCap(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	tr := rt.Tracer()
	tr.SetSpanCap(3)

	tr.Mark("a", "op", "K/1", "")
	tr.Record("a", "op", "K/2", "", 0)
	kept := tr.Start("a", "op", "K/3")
	dropped := tr.Start("a", "op", "K/4")
	tr.Mark("a", "op", "K/5", "")

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (cap)", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	if dropped.ID() != 0 {
		t.Fatalf("dropped span ref has ID %d, want 0", dropped.ID())
	}
	dropped.End() // must not panic or touch the buffer
	kept.End()
	if got := tr.Spans()[2]; got.Open() {
		t.Fatalf("kept span should have closed: %+v", got)
	}
	if v := rt.Snapshot().Counter("kubeshare_obs_spans_dropped_total"); v != 2 {
		t.Fatalf("kubeshare_obs_spans_dropped_total = %d, want 2", v)
	}
}

// TestSpanCapLazyCounter: a run that never drops must not register the
// drop counter — the metric namespace (and so every telemetry golden)
// is unchanged unless drops actually happen.
func TestSpanCapLazyCounter(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	rt.Tracer().Mark("a", "op", "K/1", "")
	for _, c := range rt.Snapshot().Counters {
		if c.Name == "kubeshare_obs_spans_dropped_total" {
			t.Fatal("drop counter registered without any drop")
		}
	}
}

// TestSpanCapOff: SetSpanCap(0) removes the bound.
func TestSpanCapOff(t *testing.T) {
	env := sim.NewEnv()
	rt := New(env)
	tr := rt.Tracer()
	tr.SetSpanCap(2)
	tr.Mark("a", "op", "K/1", "")
	tr.Mark("a", "op", "K/2", "")
	tr.SetSpanCap(0)
	tr.Mark("a", "op", "K/3", "")
	if tr.Len() != 3 || tr.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 3/0 with the cap off", tr.Len(), tr.Dropped())
	}
}

package tsdb

import (
	"time"

	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// Collector periodically scrapes a telemetry registry into a DB: every
// counter, gauge and float gauge becomes a series (labels preserved), and
// every histogram contributes its cumulative count and sum as
// "<name>_count" / "<name>_sum" series — enough to reconstruct windowed
// rates and means by differencing, Prometheus-style.
type Collector struct {
	DB       *DB
	Registry *obs.Registry
	Interval time.Duration
	// Samplers are extra per-tick hooks (GPU utilization from device busy
	// windows, fairness gauges from the auditor). They run before the
	// registry scrape, so gauges they set are captured by the same tick.
	Samplers []func(now time.Duration)
	// Done, when non-nil, is polled each tick; once true the collector
	// takes one final sample and stops, so its periodic wakeups do not keep
	// the simulation alive forever.
	Done func() bool
}

// Scrape takes one sample of everything at virtual time now.
func (c *Collector) Scrape(now time.Duration) {
	for _, fn := range c.Samplers {
		fn(now)
	}
	if c.Registry == nil {
		return
	}
	snap := c.Registry.Snapshot()
	for _, ctr := range snap.Counters {
		c.DB.Series(ctr.Name, ctr.Labels...).Add(now, float64(ctr.Value))
	}
	for _, g := range snap.Gauges {
		c.DB.Series(g.Name, g.Labels...).Add(now, float64(g.Value))
	}
	for _, f := range snap.Floats {
		c.DB.Series(f.Name, f.Labels...).Add(now, f.Value)
	}
	for _, h := range snap.Histograms {
		c.DB.Series(h.Name+"_count", h.Labels...).Add(now, float64(h.Count))
		c.DB.Series(h.Name+"_sum", h.Labels...).Add(now, h.Sum)
	}
}

// Start launches the collector's sampling proc on env. It ticks every
// Interval until Done reports true (one final sample is taken at that
// tick); with a nil Done it ticks forever, which only makes sense under
// RunUntil-style stepping.
func (c *Collector) Start(env *sim.Env) {
	env.Go("tsdb-collector", func(p *sim.Proc) {
		for {
			p.Sleep(c.Interval)
			c.Scrape(env.Now())
			if c.Done != nil && c.Done() {
				return
			}
		}
	})
}

// Package tsdb is the repository's single time-series representation: an
// append-only series of (virtual time, value) samples, optionally bounded to
// a fixed capacity with mean-preserving compaction, and a small database of
// labeled series fed by a periodic collector that scrapes the telemetry
// registry (see collector.go). internal/metrics aliases its Series/Point
// types onto this package, so experiment tables, charts and the export
// surface all draw from the same substrate.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"kubeshare/internal/obs"
)

// Point is one sample of a time series, at virtual time T.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series. Samples must be appended in
// nondecreasing time order (the clock of a discrete-event simulation never
// runs backwards). The zero value — and any literal construction setting
// just Name/Points — is an unbounded series; NewSeries with a capacity
// returns a bounded one that compacts in place instead of growing.
type Series struct {
	Name   string
	Labels []obs.Label
	Points []Point

	// capacity bounds len(Points); 0 means unbounded. When an Add would
	// exceed it, the series halves itself by merging adjacent point pairs
	// into weighted means, so retained resolution degrades gracefully (the
	// oldest data has been through the most merges) while every retained
	// point stays the exact mean of a contiguous block of raw samples.
	capacity int
	// weights[i] is the number of raw samples merged into Points[i]; nil
	// until the first compaction (meaning: all weight 1).
	weights []int64
}

// NewSeries returns a series bounded to capacity points (rounded up to an
// even minimum of 2); capacity 0 means unbounded.
func NewSeries(name string, labels []obs.Label, capacity int) *Series {
	if capacity > 0 {
		if capacity < 2 {
			capacity = 2
		}
		capacity += capacity % 2
	}
	return &Series{Name: name, Labels: labels, capacity: capacity}
}

// Capacity returns the point bound (0 = unbounded).
func (s *Series) Capacity() int { return s.capacity }

// Weight returns the number of raw samples behind Points[i].
func (s *Series) Weight(i int) int64 {
	if s.weights == nil {
		return 1
	}
	return s.weights[i]
}

// Add appends a sample. It panics when t is before the last sample, which
// would indicate a harness bug.
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic(fmt.Sprintf("tsdb: out-of-order sample on %q: %v < %v", s.Name, t, s.Points[n-1].T))
	}
	if s.capacity > 0 && len(s.Points) >= s.capacity {
		s.compact()
	}
	s.Points = append(s.Points, Point{t, v})
	if s.weights != nil {
		s.weights = append(s.weights, 1)
	}
}

// compact merges adjacent point pairs into weighted means, halving the
// series. Times use float64 intermediates: a nanosecond-scale rounding error
// is irrelevant for telemetry and the arithmetic stays deterministic, while
// int64 products of time and weight could overflow.
func (s *Series) compact() {
	if s.weights == nil {
		s.weights = make([]int64, len(s.Points))
		for i := range s.weights {
			s.weights[i] = 1
		}
	}
	n := len(s.Points)
	half := n / 2
	for i := 0; i < half; i++ {
		a, b := s.Points[2*i], s.Points[2*i+1]
		wa, wb := float64(s.weights[2*i]), float64(s.weights[2*i+1])
		s.Points[i] = Point{
			T: time.Duration((float64(a.T)*wa + float64(b.T)*wb) / (wa + wb)),
			V: (a.V*wa + b.V*wb) / (wa + wb),
		}
		s.weights[i] = s.weights[2*i] + s.weights[2*i+1]
	}
	if n%2 == 1 {
		s.Points[half] = s.Points[n-1]
		s.weights[half] = s.weights[n-1]
		half++
	}
	s.Points = s.Points[:half]
	s.weights = s.weights[:half]
}

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent sample value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Mean returns the mean of the raw sample values (weight-aware, so it is
// exact even after compaction).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum, n := 0.0, int64(0)
	for i, p := range s.Points {
		w := s.Weight(i)
		sum += p.V * float64(w)
		n += w
	}
	return sum / float64(n)
}

// Max returns the maximum retained value, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// TimeWeightedMean treats the series as a step function (each sample holds
// until the next) and returns its average over [from, to].
func (s *Series) TimeWeightedMean(from, to time.Duration) float64 {
	if to <= from || len(s.Points) == 0 {
		return 0
	}
	var acc float64
	cur := 0.0
	last := from
	for _, p := range s.Points {
		if p.T <= from {
			cur = p.V
			continue
		}
		if p.T >= to {
			break
		}
		acc += cur * float64(p.T-last)
		cur = p.V
		last = p.T
	}
	acc += cur * float64(to-last)
	return acc / float64(to-from)
}

// Downsample returns an unbounded copy of the series averaged into buckets
// of width w (retained-point average per bucket, stamped at the bucket
// start), for compact printing of long timelines.
func (s *Series) Downsample(w time.Duration) *Series {
	out := &Series{Name: s.Name, Labels: s.Labels}
	if w <= 0 || len(s.Points) == 0 {
		out.Points = append(out.Points, s.Points...)
		return out
	}
	var bucket time.Duration
	sum, n := 0.0, 0
	flush := func() {
		if n > 0 {
			out.Points = append(out.Points, Point{bucket, sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range s.Points {
		b := p.T / w * w
		if n > 0 && b != bucket {
			flush()
		}
		bucket = b
		sum += p.V
		n++
	}
	flush()
	return out
}

// Between returns a copy of the points with from ≤ T ≤ to.
func (s *Series) Between(from, to time.Duration) []Point {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= from })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > to })
	if hi <= lo {
		return nil
	}
	return append([]Point(nil), s.Points[lo:hi]...)
}

// DB is a collection of labeled bounded series, keyed by metric name plus
// label set. Map access is guarded for concurrent readers (the serve-mode
// HTTP handlers hold their own lock around sim stepping, but listing series
// must also be safe against a collector tick); appending to an individual
// series is sim-confined and not locked here.
type DB struct {
	capacity int

	mu     sync.Mutex
	series map[string]*Series
	order  []string
}

// NewDB returns an empty database whose series are bounded to capacity
// points each (0 = unbounded).
func NewDB(capacity int) *DB {
	return &DB{capacity: capacity, series: make(map[string]*Series)}
}

// Series returns the series for name and labels, creating it bounded to the
// database capacity on first use.
func (db *DB) Series(name string, labels ...obs.Label) *Series {
	key := name + obs.FormatLabels(labels)
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[key]
	if !ok {
		s = NewSeries(name, labels, db.capacity)
		db.series[key] = s
		db.order = append(db.order, key)
	}
	return s
}

// All returns every series, sorted by name then rendered labels.
func (db *DB) All() []*Series {
	db.mu.Lock()
	keys := append([]string(nil), db.order...)
	db.mu.Unlock()
	sort.Strings(keys)
	out := make([]*Series, len(keys))
	for i, k := range keys {
		db.mu.Lock()
		out[i] = db.series[k]
		db.mu.Unlock()
	}
	return out
}

// Select returns every series of one metric family, sorted by rendered
// labels.
func (db *DB) Select(name string) []*Series {
	var out []*Series
	for _, s := range db.All() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Names returns the distinct metric names, sorted.
func (db *DB) Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range db.All() {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	return out
}

package tsdb

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
)

// TestBoundedSeriesBlockMeans is the wraparound property test: however many
// compactions a bounded series has been through, every retained point must
// be the exact mean (value and time) of a contiguous block of raw samples,
// the blocks must tile the input, and no raw sample may be lost.
func TestBoundedSeriesBlockMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		capacity := 2 * (1 + rng.Intn(16))
		n := 1 + rng.Intn(20*capacity)
		s := NewSeries("x", nil, capacity)
		raw := make([]Point, n)
		now := time.Duration(0)
		for i := range raw {
			now += time.Duration(rng.Intn(1000)) * time.Millisecond
			raw[i] = Point{now, rng.Float64() * 100}
			s.Add(raw[i].T, raw[i].V)
		}
		if s.Len() > capacity {
			t.Fatalf("trial %d: len %d exceeds capacity %d", trial, s.Len(), capacity)
		}
		var total int64
		for i := 0; i < s.Len(); i++ {
			total += s.Weight(i)
		}
		if total != int64(n) {
			t.Fatalf("trial %d: weights sum to %d, want %d raw samples", trial, total, n)
		}
		// Reconstruct each point's block from the weights and compare means.
		start := 0
		for i := 0; i < s.Len(); i++ {
			w := int(s.Weight(i))
			var sumV, sumT float64
			for _, p := range raw[start : start+w] {
				sumV += p.V
				sumT += float64(p.T)
			}
			if got, want := s.Points[i].V, sumV/float64(w); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d: point %d value %v, want block mean %v", trial, i, got, want)
			}
			// Each pair-merge truncates the mean time to whole nanoseconds,
			// so allow up to one nanosecond of drift per raw sample merged.
			if got, want := float64(s.Points[i].T), sumT/float64(w); math.Abs(got-want) > float64(w) {
				t.Fatalf("trial %d: point %d time %v, want block mean %v", trial, i, got, want)
			}
			start += w
		}
		// Mean is weight-aware, so it must match the raw mean exactly
		// (modulo float summation order).
		var rawSum float64
		for _, p := range raw {
			rawSum += p.V
		}
		if got, want := s.Mean(), rawSum/float64(n); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Mean %v, want %v", trial, got, want)
		}
	}
}

// TestWraparoundMatchesDownsample checks the equivalence between ring
// wraparound and explicit downsampling: at a fixed sampling cadence, the
// values after one compaction equal Downsample's bucket means over the raw
// series, because pair-merge blocks align with time buckets.
func TestWraparoundMatchesDownsample(t *testing.T) {
	const capacity = 64
	const period = time.Second
	rng := rand.New(rand.NewSource(11))
	bounded := NewSeries("x", nil, capacity)
	raw := &Series{Name: "x"}
	for i := 0; i < capacity+1; i++ { // one past capacity: exactly one compaction
		v := rng.Float64()
		ts := time.Duration(i) * period
		bounded.Add(ts, v)
		raw.Add(ts, v)
	}
	down := raw.Downsample(2 * period)
	for i := 0; i < capacity/2; i++ {
		if got, want := bounded.Points[i].V, down.Points[i].V; math.Abs(got-want) > 1e-9 {
			t.Fatalf("point %d: bounded %v, downsample %v", i, got, want)
		}
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order sample")
		}
	}()
	s := &Series{Name: "x"}
	s.Add(2*time.Second, 1)
	s.Add(time.Second, 2)
}

func TestSeriesBetween(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	got := s.Between(3*time.Second, 6*time.Second)
	if len(got) != 4 || got[0].V != 3 || got[3].V != 6 {
		t.Fatalf("Between(3s,6s) = %v", got)
	}
	if s.Between(20*time.Second, 30*time.Second) != nil {
		t.Fatal("out-of-range Between should be nil")
	}
}

func TestDBSeriesIdentity(t *testing.T) {
	db := NewDB(128)
	a := db.Series("m", obs.Label{Key: "gpu_uuid", Value: "GPU-1"})
	b := db.Series("m", obs.Label{Key: "gpu_uuid", Value: "GPU-1"})
	c := db.Series("m", obs.Label{Key: "gpu_uuid", Value: "GPU-2"})
	if a != b {
		t.Fatal("same name+labels must intern to one series")
	}
	if a == c {
		t.Fatal("distinct labels must not alias")
	}
	if got := len(db.Select("m")); got != 2 {
		t.Fatalf("Select(m) = %d series, want 2", got)
	}
	if names := db.Names(); len(names) != 1 || names[0] != "m" {
		t.Fatalf("Names() = %v", names)
	}
	if a.Capacity() != 128 {
		t.Fatalf("capacity = %d", a.Capacity())
	}
}

// TestCollectorScrape runs a collector against a live registry inside a
// simulation and checks counters, float gauges and histogram count/sum all
// land in the database with their labels intact.
func TestCollectorScrape(t *testing.T) {
	env := sim.NewEnv()
	rt := obs.New(env)
	reg := rt.Registry()
	ctr := reg.CounterVec("kubeshare_test_ticks_total", "node").With("node-0")
	fg := reg.FloatGaugeVec("kubeshare_test_ratio", "node").With("node-0")
	hist := reg.Histogram("kubeshare_test_wait_seconds")

	db := NewDB(0)
	done := false
	col := &Collector{
		DB:       db,
		Registry: reg,
		Interval: time.Second,
		Done:     func() bool { return done },
	}
	col.Start(env)
	env.Go("load", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			ctr.Inc()
			fg.Set(float64(i) / 10)
			hist.Observe(0.25)
			p.Sleep(time.Second)
		}
		done = true
	})
	env.Run()

	ticks := db.Select("kubeshare_test_ticks_total")
	if len(ticks) != 1 || len(ticks[0].Labels) != 1 || ticks[0].Labels[0].Value != "node-0" {
		t.Fatalf("ticks series = %+v", ticks)
	}
	if ticks[0].Last() != 5 {
		t.Fatalf("final tick count = %v", ticks[0].Last())
	}
	if got := db.Select("kubeshare_test_ratio"); len(got) != 1 || got[0].Last() != 0.4 {
		t.Fatalf("ratio series = %+v", got)
	}
	cnt := db.Select("kubeshare_test_wait_seconds_count")
	sum := db.Select("kubeshare_test_wait_seconds_sum")
	if len(cnt) != 1 || cnt[0].Last() != 5 {
		t.Fatalf("hist count series = %+v", cnt)
	}
	if len(sum) != 1 || math.Abs(sum[0].Last()-1.25) > 1e-12 {
		t.Fatalf("hist sum series = %+v", sum)
	}
}

package sim

import (
	"testing"
	"time"
)

// BenchmarkTimerChurn measures raw event-queue throughput: schedule + fire.
func BenchmarkTimerChurn(b *testing.B) {
	env := NewEnv()
	n := 0
	for i := 0; i < b.N; i++ {
		env.After(time.Microsecond, func() { n++ })
		env.Step()
	}
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkProcContextSwitch measures the cost of one park/resume cycle
// (two goroutine handoffs per virtual sleep).
func BenchmarkProcContextSwitch(b *testing.B) {
	env := NewEnv()
	env.Go("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkQueueHandoff measures producer→consumer message latency in sim
// events.
func BenchmarkQueueHandoff(b *testing.B) {
	env := NewEnv()
	q := NewQueue[int](env)
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Yield()
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkSimKernelSameInstant measures the same-instant FIFO ring: every
// event is scheduled at the current virtual time, so nothing touches the
// head register or the heap.
func BenchmarkSimKernelSameInstant(b *testing.B) {
	env := NewEnv()
	n := 0
	fn := func() { n++ }
	for i := 0; i < b.N; i++ {
		env.At(env.Now(), fn)
		env.Step()
	}
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkSimKernelTimerStop measures the cancellation path: half the
// scheduled timers are stopped before they fire, exercising slot recycling
// through the lazy-cancel route as well as the firing route.
func BenchmarkSimKernelTimerStop(b *testing.B) {
	env := NewEnv()
	n := 0
	fn := func() { n++ }
	for i := 0; i < b.N; i++ {
		keep := env.After(time.Microsecond, fn)
		cancel := env.After(2*time.Microsecond, fn)
		if !cancel.Stop() {
			b.Fatal("Stop() = false on a pending timer")
		}
		env.Step()
		_ = keep
	}
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkSimKernelDeepHeap measures schedule+fire churn with 1000 timers
// permanently outstanding: every fired timer reschedules itself at a spread
// deadline, so each Step is one pop from and one push into a ~1000-deep
// 4-ary heap (the head register and same-instant ring cannot absorb it).
func BenchmarkSimKernelDeepHeap(b *testing.B) {
	env := NewEnv()
	const standing = 1000
	n := 0
	fns := make([]func(), standing)
	for i := 0; i < standing; i++ {
		d := time.Duration(1+i%97) * time.Microsecond
		fns[i] = func() {
			n++
			env.After(d, fns[i])
		}
		env.After(d, fns[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Step()
	}
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkManyProcs measures scheduling with a thousand concurrent procs
// ticking independently — the cluster-at-scale shape.
func BenchmarkManyProcs(b *testing.B) {
	env := NewEnv()
	const procs = 1000
	ticks := b.N/procs + 1
	for i := 0; i < procs; i++ {
		env.Go("ticker", func(p *Proc) {
			for t := 0; t < ticks; t++ {
				p.Sleep(time.Duration(1+p.ID()%17) * time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	env.Run()
}

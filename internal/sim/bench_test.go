package sim

import (
	"testing"
	"time"
)

// BenchmarkTimerChurn measures raw event-queue throughput: schedule + fire.
func BenchmarkTimerChurn(b *testing.B) {
	env := NewEnv()
	n := 0
	for i := 0; i < b.N; i++ {
		env.After(time.Microsecond, func() { n++ })
		env.Step()
	}
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkProcContextSwitch measures the cost of one park/resume cycle
// (two goroutine handoffs per virtual sleep).
func BenchmarkProcContextSwitch(b *testing.B) {
	env := NewEnv()
	env.Go("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkQueueHandoff measures producer→consumer message latency in sim
// events.
func BenchmarkQueueHandoff(b *testing.B) {
	env := NewEnv()
	q := NewQueue[int](env)
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Yield()
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkManyProcs measures scheduling with a thousand concurrent procs
// ticking independently — the cluster-at-scale shape.
func BenchmarkManyProcs(b *testing.B) {
	env := NewEnv()
	const procs = 1000
	ticks := b.N/procs + 1
	for i := 0; i < procs; i++ {
		env.Go("ticker", func(p *Proc) {
			for t := 0; t < ticks; t++ {
				p.Sleep(time.Duration(1+p.ID()%17) * time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	env.Run()
}

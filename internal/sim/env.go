// Package sim provides a deterministic, process-based discrete-event
// simulation kernel in the style of SimPy.
//
// Every component of the simulated cluster (kubelets, schedulers, container
// entrypoints, token managers, workload generators) runs as a Proc: a
// coroutine whose execution is strictly interleaved by the Env scheduler so
// that exactly one proc runs at any instant. Blocking operations (Sleep,
// Event.Wait, Queue.Get, Resource.Acquire) hand control back to the
// scheduler, which advances virtual time to the next pending event. The
// result is a concurrent programming model with fully deterministic,
// seed-reproducible executions — hours of simulated cluster time complete in
// milliseconds of real time.
//
// The kernel is intentionally free of wall-clock dependencies; virtual time
// is a time.Duration offset from the simulation epoch.
//
// Internally the event queue is split three ways, all holding pointer-free
// 24-byte entries so queue maintenance never triggers write barriers:
//
//   - a FIFO ring for events scheduled at the current instant — the dominant
//     case: every proc wakeup, Queue.Put handoff and Event.Trigger;
//   - a one-entry head register caching the earliest future event, so the
//     common schedule-one/fire-one timer pattern never touches the heap;
//   - a 4-ary min-heap keyed by (time, seq) for the rest.
//
// Entries reference pooled item slots carrying the callback/proc pointers
// and a generation counter (for safe Timer cancellation), so steady-state
// scheduling allocates nothing.
package sim

import (
	"fmt"
	"iter"
	"sort"
	"time"
)

// entry is one scheduled event. It is pointer-free by design: entries are
// copied around the ring and heap constantly, and pointer fields would make
// every copy pay GC write barriers.
type entry struct {
	t    time.Duration
	seq  uint64 // FIFO tie-break among events with equal t
	slot uint32 // index into Env.items
}

// item is a pooled event payload: what to run (exactly one of proc/fn is
// set) plus cancellation state. The generation counter makes recycled slots
// safe: a Timer remembers the gen it was issued with, and any mismatch means
// the event already fired and the slot now belongs to someone else.
type item struct {
	proc      *Proc  // wake (dispatch) this proc ...
	fn        func() // ... or run this callback
	gen       uint32
	cancelled bool
	inHeap    bool // the entry sits in the heap (not ring or head register)
}

func entryLess(a, b *entry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// Env is a simulation environment: a virtual clock plus an event queue.
// An Env and everything attached to it must be driven from a single
// goroutine (the one calling Run/RunUntil/Step); the kernel provides the
// interleaving, not the Go scheduler.
type Env struct {
	now time.Duration
	// ring holds events scheduled for the current instant, in FIFO order.
	// Invariant: every ring entry has t == now (the ring drains before the
	// clock advances), and ring order agrees with seq order.
	ring fifo[entry]
	// head caches one future event — typically the earliest — so the
	// schedule-one/fire-one pattern bypasses the heap. Correctness does not
	// depend on head being the minimum: pops take the 3-way minimum of
	// ring/head/heap fronts.
	head      entry
	headValid bool
	// heap is a 4-ary min-heap of future events keyed by (t, seq).
	heap          []entry
	heapCancelled int // cancelled entries still buried in the heap
	pending       int // live (non-cancelled) scheduled events
	daemonPending int // the subset of pending that wakes daemon procs
	seq           uint64
	items         []item   // slot-addressed event payloads
	freeSlots     []uint32 // recycled item slots
	freeWaiters   []*waiter
	current       *Proc // proc currently executing, nil when the scheduler runs
	live          int   // procs that have started and not yet finished
	nextPID       int
	running       bool
	tracer        func(t time.Duration, format string, args ...any)
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{}
}

// Now returns the current virtual time as an offset from the simulation epoch.
func (env *Env) Now() time.Duration { return env.now }

// SetTracer installs a trace sink invoked by Proc.Tracef and internal
// lifecycle points. A nil tracer (the default) disables tracing.
func (env *Env) SetTracer(fn func(t time.Duration, format string, args ...any)) {
	env.tracer = fn
}

func (env *Env) tracef(format string, args ...any) {
	if env.tracer != nil {
		env.tracer(env.now, format, args...)
	}
}

// slot pool ---------------------------------------------------------------

func (env *Env) newSlot() uint32 {
	if n := len(env.freeSlots); n > 0 {
		s := env.freeSlots[n-1]
		env.freeSlots = env.freeSlots[:n-1]
		return s
	}
	env.items = append(env.items, item{})
	return uint32(len(env.items) - 1)
}

// recycleSlot bumps the generation (invalidating outstanding Timers) and
// returns the slot to the pool. Called exactly once per scheduled event,
// when its entry leaves the ring, head register or heap.
func (env *Env) recycleSlot(slot uint32) {
	it := &env.items[slot]
	it.gen++
	it.cancelled = false
	it.inHeap = false
	env.freeSlots = append(env.freeSlots, slot)
}

// scheduling --------------------------------------------------------------

// enqueue schedules an event at absolute time t (clamped to now) and returns
// its slot and generation. Entries at the current instant go to the FIFO
// ring; future entries go to the head register or the heap.
func (env *Env) enqueue(t time.Duration, proc *Proc, fn func()) (uint32, uint32) {
	slot := env.newSlot()
	it := &env.items[slot]
	// Payload pointers are cleared here, on reuse, rather than in recycleSlot:
	// when a slot is reused for the same kind of event (the dominant pattern —
	// timer after timer, wakeup after wakeup) the overwrite below is the only
	// GC write barrier the whole schedule/fire cycle pays. The cost is that a
	// free slot pins its last payload until its next tenant arrives; the free
	// list is bounded by peak event concurrency, so the retention is too.
	if proc != nil {
		it.proc = proc
		if it.fn != nil {
			it.fn = nil
		}
	} else {
		it.fn = fn
		if it.proc != nil {
			it.proc = nil
		}
	}
	gen := it.gen
	if t < env.now {
		t = env.now
	}
	env.seq++
	env.pending++
	if proc != nil && proc.daemon {
		env.daemonPending++
	}
	e := entry{t: t, seq: env.seq, slot: slot}
	switch {
	case t == env.now:
		env.ring.push(e)
	case !env.headValid:
		env.head = e
		env.headValid = true
	case entryLess(&e, &env.head):
		env.demoteHead()
		env.head = e
	default:
		it.inHeap = true
		env.heapPush(e)
	}
	return slot, gen
}

// demoteHead moves the head-register entry into the heap; the caller
// immediately refills (or invalidates) the register.
func (env *Env) demoteHead() {
	hit := &env.items[env.head.slot]
	hit.inHeap = true
	if hit.cancelled {
		env.heapCancelled++
	}
	env.heapPush(env.head)
}

// cancelItem lazily cancels a scheduled entry's payload. Ring and head
// entries are skipped at pop time; heap entries are counted and compacted
// away once they outnumber the live ones.
func (env *Env) cancelItem(it *item) {
	it.cancelled = true
	env.pending--
	if it.proc != nil && it.proc.daemon {
		env.daemonPending--
	}
	if it.inHeap {
		env.heapCancelled++
		if env.heapCancelled >= 32 && env.heapCancelled*2 > len(env.heap) {
			env.compactHeap()
		}
	}
}

// After schedules fn to run after delay d of virtual time. It returns a
// Timer whose Stop method cancels the callback if it has not yet fired.
func (env *Env) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return env.timerAt(env.now+d, fn)
}

// At schedules fn at absolute virtual time t (clamped to the present).
func (env *Env) At(t time.Duration, fn func()) Timer {
	return env.timerAt(t, fn)
}

func (env *Env) timerAt(t time.Duration, fn func()) Timer {
	slot, gen := env.enqueue(t, nil, fn)
	return Timer{env: env, slot: slot, gen: gen}
}

// Timer is a handle to a scheduled callback. The zero Timer is inert: Stop
// and Active return false.
type Timer struct {
	env  *Env
	slot uint32
	gen  uint32
}

// Stop cancels the timer. It reports whether the callback was still pending.
func (tm Timer) Stop() bool {
	if tm.env == nil {
		return false
	}
	it := &tm.env.items[tm.slot]
	if it.gen != tm.gen || it.cancelled {
		return false
	}
	tm.env.cancelItem(it)
	return true
}

// Active reports whether the callback is still pending: not yet fired and
// not stopped. Inside the firing callback itself Active is already false.
func (tm Timer) Active() bool {
	if tm.env == nil {
		return false
	}
	it := &tm.env.items[tm.slot]
	return it.gen == tm.gen && !it.cancelled
}

// 4-ary heap --------------------------------------------------------------
//
// Children of node i live at 4i+1..4i+4, the parent at (i-1)/4. Compared to
// a binary heap this halves the tree depth (fewer cache lines touched per
// sift) at the cost of three extra comparisons per level on the way down.

func (env *Env) heapPush(e entry) {
	h := append(env.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	env.heap = h
}

func (env *Env) heapPop() entry {
	h := env.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	env.heap = h[:n]
	if n > 1 {
		env.siftDown(0)
	}
	return top
}

func (env *Env) siftDown(i int) {
	h := env.heap
	n := len(h)
	for {
		min := i
		c := i<<2 + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if entryLess(&h[c], &h[min]) {
				min = c
			}
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// compactHeap removes cancelled entries in place, recycles their slots and
// re-heapifies (Floyd's bottom-up construction).
func (env *Env) compactHeap() {
	h := env.heap[:0]
	for _, e := range env.heap {
		if env.items[e.slot].cancelled {
			env.recycleSlot(e.slot)
			continue
		}
		h = append(h, e)
	}
	env.heap = h
	for i := (len(h) - 2) >> 2; i >= 0; i-- {
		env.siftDown(i)
	}
	env.heapCancelled = 0
}

// event selection ---------------------------------------------------------

const (
	srcNone = iota
	srcRing
	srcHead
	srcHeap
)

// front locates the earliest pending entry as the 3-way minimum of the ring,
// head register and heap fronts.
func (env *Env) front() (src int, e *entry) {
	if env.ring.n > 0 {
		src, e = srcRing, env.ring.peek()
	}
	if env.headValid && (src == srcNone || entryLess(&env.head, e)) {
		src, e = srcHead, &env.head
	}
	if len(env.heap) > 0 && (src == srcNone || entryLess(&env.heap[0], e)) {
		src, e = srcHeap, &env.heap[0]
	}
	return src, e
}

func (env *Env) popFrom(src int) entry {
	switch src {
	case srcRing:
		return env.ring.pop()
	case srcHead:
		env.headValid = false
		return env.head
	default:
		return env.heapPop()
	}
}

// Go spawns fn as a new simulation process that begins executing at the
// current virtual time (after the caller yields). The name appears in traces
// and String output.
//
// Procs are coroutines (iter.Pull), not plain goroutines: park/dispatch is a
// direct coroutine switch with no Go-scheduler round trip, which is the
// difference between ~100ns and ~650ns per virtual context switch.
func (env *Env) Go(name string, fn func(p *Proc)) *Proc {
	return env.spawn(name, fn, false)
}

// GoDaemon is Go for periodic background loops (heartbeats, lifecycle
// sweeps) that must not keep Run alive: the proc's wakeups fire normally
// while non-daemon work is pending, but a queue holding only daemon wakeups
// counts as quiescent. Daemons parked on queues or events behave exactly
// like normal procs — the flag only affects scheduled wakeups (Sleep).
func (env *Env) GoDaemon(name string, fn func(p *Proc)) *Proc {
	return env.spawn(name, fn, true)
}

func (env *Env) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	env.nextPID++
	p := &Proc{
		env:    env,
		id:     env.nextPID,
		name:   name,
		daemon: daemon,
		doneEv: NewEvent(env),
	}
	env.live++
	p.next, _ = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					panic(r) // real panic in user code: propagate
				}
			}
			p.finished = true
			env.live--
			p.doneEv.Trigger(p.killErr)
			env.tracef("proc %s finished", p.name)
		}()
		if p.killed { // killed before first execution
			panic(killSignal{})
		}
		fn(p)
	})
	env.enqueue(env.now, p, nil)
	return p
}

// dispatch hands the CPU to p until it parks or finishes.
func (env *Env) dispatch(p *Proc) {
	if p.finished {
		return
	}
	prev := env.current
	env.current = p
	p.next()
	env.current = prev
}

// Step executes the single earliest pending event. It reports whether an
// event was executed (false means the queue is empty).
func (env *Env) Step() bool {
	for {
		// Inlined front()+popFrom(): select the 3-way minimum of ring, head
		// register and heap fronts, then remove it from its source.
		var e entry
		src := srcNone
		if env.ring.n > 0 {
			e = *env.ring.peek()
			src = srcRing
		}
		if env.headValid && (src == srcNone || entryLess(&env.head, &e)) {
			e = env.head
			src = srcHead
		}
		if len(env.heap) > 0 && (src == srcNone || entryLess(&env.heap[0], &e)) {
			src = srcHeap
		}
		switch src {
		case srcNone:
			return false
		case srcRing:
			env.ring.popRaw()
		case srcHead:
			env.headValid = false
		default:
			e = env.heapPop()
		}
		it := &env.items[e.slot]
		if it.cancelled {
			if it.inHeap {
				env.heapCancelled--
			}
			env.recycleSlot(e.slot)
			continue
		}
		proc, fn := it.proc, it.fn
		// Recycle before running, so a Timer queried from inside its own
		// callback reports inactive.
		env.recycleSlot(e.slot)
		env.pending--
		if proc != nil && proc.daemon {
			env.daemonPending--
		}
		if e.t > env.now {
			env.now = e.t
		}
		if proc != nil {
			env.dispatch(proc)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events until no non-daemon event remains. Procs blocked
// forever (for example servers waiting on request queues) do not keep Run
// alive; like SimPy, the simulation ends when no future event exists.
// Daemon procs (GoDaemon) — periodic background loops like node heartbeats
// — likewise do not keep Run alive: their wakeups still fire in time order
// while real work is pending, but once only daemon wakeups remain the
// simulation is quiescent and Run returns.
func (env *Env) Run() {
	env.running = true
	for env.pending > env.daemonPending && env.Step() {
	}
	env.running = false
}

// RunUntil executes events with time ≤ t and then sets the clock to t.
func (env *Env) RunUntil(t time.Duration) {
	env.running = true
	for env.peekTime() <= t {
		env.Step()
	}
	if env.now < t {
		env.now = t
	}
	env.running = false
}

// peekTime returns the time of the earliest live event, dropping cancelled
// fronts on the way, or a value past any horizon when nothing is pending.
func (env *Env) peekTime() time.Duration {
	for {
		src, e := env.front()
		if src == srcNone {
			return 1<<63 - 1
		}
		it := &env.items[e.slot]
		if !it.cancelled {
			return e.t
		}
		popped := env.popFrom(src)
		if it.inHeap {
			env.heapCancelled--
		}
		env.recycleSlot(popped.slot)
	}
}

// Pending returns the number of live (non-cancelled) events in the queue.
func (env *Env) Pending() int { return env.pending }

// Live returns the number of procs that have started and not yet finished.
func (env *Env) Live() int { return env.live }

// Snapshot returns a sorted description of pending events, for debugging
// stuck simulations.
func (env *Env) Snapshot() []string {
	var out []string
	add := func(e *entry) {
		if env.items[e.slot].cancelled {
			return
		}
		out = append(out, fmt.Sprintf("t=%v seq=%d", e.t, e.seq))
	}
	for i := 0; i < env.ring.n; i++ {
		add(env.ring.at(i))
	}
	if env.headValid {
		add(&env.head)
	}
	for i := range env.heap {
		add(&env.heap[i])
	}
	sort.Strings(out)
	return out
}

// Package sim provides a deterministic, process-based discrete-event
// simulation kernel in the style of SimPy.
//
// Every component of the simulated cluster (kubelets, schedulers, container
// entrypoints, token managers, workload generators) runs as a Proc: a
// coroutine whose execution is strictly interleaved by the Env scheduler so
// that exactly one proc runs at any instant. Blocking operations (Sleep,
// Event.Wait, Queue.Get, Resource.Acquire) hand control back to the
// scheduler, which advances virtual time to the next pending event. The
// result is a concurrent programming model with fully deterministic,
// seed-reproducible executions — hours of simulated cluster time complete in
// milliseconds of real time.
//
// The kernel is intentionally free of wall-clock dependencies; virtual time
// is a time.Duration offset from the simulation epoch.
//
// The event queue is partitioned into lanes (see lane.go); every lane is
// split three ways, all holding pointer-free 24-byte entries so queue
// maintenance never triggers write barriers:
//
//   - a FIFO ring for events scheduled at the current instant — the dominant
//     case: every proc wakeup, Queue.Put handoff and Event.Trigger;
//   - a one-entry head register caching the earliest future event, so the
//     common schedule-one/fire-one timer pattern never touches the heap;
//   - a 4-ary min-heap keyed by (time, seq) for the rest.
//
// Entries reference pooled item slots carrying the callback/proc pointers
// and a generation counter (for safe Timer cancellation), so steady-state
// scheduling allocates nothing. The slot's high bits name the owning lane,
// so a Timer handle can always find its slab.
package sim

import (
	"fmt"
	"iter"
	"sort"
	"time"
)

// entry is one scheduled event. It is pointer-free by design: entries are
// copied around the ring and heap constantly, and pointer fields would make
// every copy pay GC write barriers.
type entry struct {
	t    time.Duration
	seq  uint64 // FIFO tie-break among events with equal t
	slot uint32 // lane (high bits) + index into that lane's item slab
}

// item is a pooled event payload: what to run (exactly one of proc/fn is
// set) plus cancellation state. The generation counter makes recycled slots
// safe: a Timer remembers the gen it was issued with, and any mismatch means
// the event already fired and the slot now belongs to someone else.
type item struct {
	proc      *Proc  // wake (dispatch) this proc ...
	fn        func() // ... or run this callback
	gen       uint32
	cancelled bool
	inHeap    bool // the entry sits in the heap (not ring or head register)
}

// entryLess orders events by (instant, seq). seq is globally unique across
// lanes, so this is a total order: the k-way lane merge pops events in
// exactly the order a single monolithic queue would, which is what keeps
// traces byte-identical at every lane count.
func entryLess(a, b *entry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// Env is a simulation environment: a virtual clock plus a lane-partitioned
// event queue. An Env and everything attached to it must be driven from a
// single goroutine (the one calling Run/RunUntil/Step); the kernel provides
// the interleaving, not the Go scheduler. The only concurrency the kernel
// itself offers is the FanOut window (lane.go), a barrier-bracketed
// read-only region between events.
type Env struct {
	now time.Duration
	// lanes are the partitioned event queues; always at least one. Lane 0
	// is the default lane; SetLanes widens the partition before first use.
	lanes []*laneQ
	// curLane is the lane of the event currently executing (or 0 between
	// events). New events with no proc affinity are scheduled on it, so an
	// event's follow-ups stay in its lane.
	curLane int
	// inWindow is true inside a FanOut parallel window. enqueue panics
	// while it is set: lane-local code must stay read-only and communicate
	// through the cross-lane mailbox (LaneSend) until the barrier.
	inWindow      bool
	pending       int // live (non-cancelled) scheduled events
	daemonPending int // the subset of pending that wakes daemon procs
	seq           uint64
	mail          [][][]any // [from][to] cross-lane mailboxes, FanOut-only
	freeWaiters   []*waiter
	current       *Proc // proc currently executing, nil when the scheduler runs
	live          int   // procs that have started and not yet finished
	nextPID       int
	running       bool
	tracer        func(t time.Duration, format string, args ...any)
}

// NewEnv returns an empty single-lane environment with the clock at zero.
func NewEnv() *Env {
	return &Env{lanes: []*laneQ{{}}}
}

// Now returns the current virtual time as an offset from the simulation epoch.
func (env *Env) Now() time.Duration { return env.now }

// SetTracer installs a trace sink invoked by Proc.Tracef and internal
// lifecycle points. A nil tracer (the default) disables tracing.
func (env *Env) SetTracer(fn func(t time.Duration, format string, args ...any)) {
	env.tracer = fn
}

func (env *Env) tracef(format string, args ...any) {
	if env.tracer != nil {
		env.tracer(env.now, format, args...)
	}
}

// itemAt resolves a slot handle to its payload in the owning lane's slab.
func (env *Env) itemAt(slot uint32) *item {
	return &env.lanes[slot>>laneShift].items[slot&slotIdxMask]
}

// scheduling --------------------------------------------------------------

// enqueue schedules an event at absolute time t (clamped to now) and returns
// its slot and generation. The event lands in the target proc's lane (or the
// current lane for callbacks); entries at the current instant go to the
// lane's FIFO ring; future entries go to its head register or heap.
func (env *Env) enqueue(t time.Duration, proc *Proc, fn func()) (uint32, uint32) {
	if env.inWindow {
		panic("sim: event scheduled inside a FanOut window; lane code must be read-only (route results through LaneSend)")
	}
	li := env.curLane
	if proc != nil {
		li = proc.lane
	}
	ln := env.lanes[li]
	slot := ln.newSlot(li)
	it := &ln.items[slot&slotIdxMask]
	// Payload pointers are cleared here, on reuse, rather than in recycle:
	// when a slot is reused for the same kind of event (the dominant pattern —
	// timer after timer, wakeup after wakeup) the overwrite below is the only
	// GC write barrier the whole schedule/fire cycle pays. The cost is that a
	// free slot pins its last payload until its next tenant arrives; the free
	// list is bounded by peak event concurrency, so the retention is too.
	if proc != nil {
		it.proc = proc
		if it.fn != nil {
			it.fn = nil
		}
	} else {
		it.fn = fn
		if it.proc != nil {
			it.proc = nil
		}
	}
	gen := it.gen
	if t < env.now {
		t = env.now
	}
	env.seq++
	env.pending++
	if proc != nil && proc.daemon {
		env.daemonPending++
	}
	e := entry{t: t, seq: env.seq, slot: slot}
	switch {
	case t == env.now:
		ln.ring.push(e)
	case !ln.headValid:
		ln.head = e
		ln.headValid = true
	case entryLess(&e, &ln.head):
		ln.demoteHead()
		ln.head = e
	default:
		it.inHeap = true
		ln.heapPush(e)
	}
	return slot, gen
}

// cancelItem lazily cancels a scheduled entry's payload. Ring and head
// entries are skipped at pop time; heap entries are counted and compacted
// away once they outnumber the live ones in their lane.
func (env *Env) cancelItem(slot uint32) {
	ln := env.lanes[slot>>laneShift]
	it := &ln.items[slot&slotIdxMask]
	it.cancelled = true
	env.pending--
	if it.proc != nil && it.proc.daemon {
		env.daemonPending--
	}
	if it.inHeap {
		ln.heapCancelled++
		if ln.heapCancelled >= 32 && ln.heapCancelled*2 > len(ln.heap) {
			ln.compact()
		}
	}
}

// After schedules fn to run after delay d of virtual time. It returns a
// Timer whose Stop method cancels the callback if it has not yet fired.
func (env *Env) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return env.timerAt(env.now+d, fn)
}

// At schedules fn at absolute virtual time t (clamped to the present).
func (env *Env) At(t time.Duration, fn func()) Timer {
	return env.timerAt(t, fn)
}

func (env *Env) timerAt(t time.Duration, fn func()) Timer {
	slot, gen := env.enqueue(t, nil, fn)
	return Timer{env: env, slot: slot, gen: gen}
}

// Timer is a handle to a scheduled callback. The zero Timer is inert: Stop
// and Active return false.
type Timer struct {
	env  *Env
	slot uint32
	gen  uint32
}

// Stop cancels the timer. It reports whether the callback was still pending.
func (tm Timer) Stop() bool {
	if tm.env == nil {
		return false
	}
	it := tm.env.itemAt(tm.slot)
	if it.gen != tm.gen || it.cancelled {
		return false
	}
	tm.env.cancelItem(tm.slot)
	return true
}

// Active reports whether the callback is still pending: not yet fired and
// not stopped. Inside the firing callback itself Active is already false.
func (tm Timer) Active() bool {
	if tm.env == nil {
		return false
	}
	it := tm.env.itemAt(tm.slot)
	return it.gen == tm.gen && !it.cancelled
}

// event selection ---------------------------------------------------------

const (
	srcNone = iota
	srcRing
	srcHead
	srcHeap
)

// front locates the earliest pending entry as the minimum over every lane's
// ring, head register and heap fronts.
func (env *Env) front() (lane, src int, e *entry) {
	for li, ln := range env.lanes {
		if ln.ring.n > 0 {
			if f := ln.ring.peek(); src == srcNone || entryLess(f, e) {
				lane, src, e = li, srcRing, f
			}
		}
		if ln.headValid && (src == srcNone || entryLess(&ln.head, e)) {
			lane, src, e = li, srcHead, &ln.head
		}
		if len(ln.heap) > 0 && (src == srcNone || entryLess(&ln.heap[0], e)) {
			lane, src, e = li, srcHeap, &ln.heap[0]
		}
	}
	return lane, src, e
}

// Go spawns fn as a new simulation process that begins executing at the
// current virtual time (after the caller yields). The name appears in traces
// and String output. The proc joins the current lane; see GoOnLane.
//
// Procs are coroutines (iter.Pull), not plain goroutines: park/dispatch is a
// direct coroutine switch with no Go-scheduler round trip, which is the
// difference between ~100ns and ~650ns per virtual context switch.
func (env *Env) Go(name string, fn func(p *Proc)) *Proc {
	return env.spawn(name, fn, false, env.curLane)
}

// GoDaemon is Go for periodic background loops (heartbeats, lifecycle
// sweeps) that must not keep Run alive: the proc's wakeups fire normally
// while non-daemon work is pending, but a queue holding only daemon wakeups
// counts as quiescent. Daemons parked on queues or events behave exactly
// like normal procs — the flag only affects scheduled wakeups (Sleep).
func (env *Env) GoDaemon(name string, fn func(p *Proc)) *Proc {
	return env.spawn(name, fn, true, env.curLane)
}

func (env *Env) spawn(name string, fn func(p *Proc), daemon bool, lane int) *Proc {
	env.nextPID++
	p := &Proc{
		env:    env,
		id:     env.nextPID,
		name:   name,
		daemon: daemon,
		lane:   lane,
		doneEv: NewEvent(env),
	}
	env.live++
	p.next, _ = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					panic(r) // real panic in user code: propagate
				}
			}
			p.finished = true
			env.live--
			p.doneEv.Trigger(p.killErr)
			env.tracef("proc %s finished", p.name)
		}()
		if p.killed { // killed before first execution
			panic(killSignal{})
		}
		fn(p)
	})
	env.enqueue(env.now, p, nil)
	return p
}

// dispatch hands the CPU to p until it parks or finishes.
func (env *Env) dispatch(p *Proc) {
	if p.finished {
		return
	}
	prev := env.current
	env.current = p
	p.next()
	env.current = prev
}

// Step executes the single earliest pending event — the (instant, seq)
// minimum across every lane. It reports whether an event was executed
// (false means the queue is empty).
func (env *Env) Step() bool {
	for {
		// Select the minimum over each lane's ring, head register and heap
		// fronts, then remove it from its source.
		var e entry
		src := srcNone
		laneIdx := 0
		for li, ln := range env.lanes {
			if ln.ring.n > 0 {
				if f := ln.ring.peek(); src == srcNone || entryLess(f, &e) {
					e, src, laneIdx = *f, srcRing, li
				}
			}
			if ln.headValid && (src == srcNone || entryLess(&ln.head, &e)) {
				e, src, laneIdx = ln.head, srcHead, li
			}
			if len(ln.heap) > 0 && (src == srcNone || entryLess(&ln.heap[0], &e)) {
				e, src, laneIdx = ln.heap[0], srcHeap, li
			}
		}
		ln := env.lanes[laneIdx]
		switch src {
		case srcNone:
			return false
		case srcRing:
			ln.ring.popRaw()
		case srcHead:
			ln.headValid = false
		default:
			ln.heapPop()
		}
		it := &ln.items[e.slot&slotIdxMask]
		if it.cancelled {
			if it.inHeap {
				ln.heapCancelled--
			}
			ln.recycle(e.slot)
			continue
		}
		proc, fn := it.proc, it.fn
		// Recycle before running, so a Timer queried from inside its own
		// callback reports inactive.
		ln.recycle(e.slot)
		env.pending--
		if proc != nil && proc.daemon {
			env.daemonPending--
		}
		if e.t > env.now {
			env.now = e.t
		}
		env.curLane = laneIdx
		if proc != nil {
			env.dispatch(proc)
		} else {
			fn()
		}
		return true
	}
}

// Run executes events until no non-daemon event remains. Procs blocked
// forever (for example servers waiting on request queues) do not keep Run
// alive; like SimPy, the simulation ends when no future event exists.
// Daemon procs (GoDaemon) — periodic background loops like node heartbeats
// — likewise do not keep Run alive: their wakeups still fire in time order
// while real work is pending, but once only daemon wakeups remain the
// simulation is quiescent and Run returns.
func (env *Env) Run() {
	env.running = true
	for env.pending > env.daemonPending && env.Step() {
	}
	env.running = false
}

// RunUntil executes events with time ≤ t and then sets the clock to t.
func (env *Env) RunUntil(t time.Duration) {
	env.running = true
	for env.peekTime() <= t {
		env.Step()
	}
	if env.now < t {
		env.now = t
	}
	env.running = false
}

// peekTime returns the time of the earliest live event, dropping cancelled
// fronts on the way, or a value past any horizon when nothing is pending.
func (env *Env) peekTime() time.Duration {
	for {
		lane, src, e := env.front()
		if src == srcNone {
			return 1<<63 - 1
		}
		ln := env.lanes[lane]
		it := &ln.items[e.slot&slotIdxMask]
		if !it.cancelled {
			return e.t
		}
		popped := ln.popFrom(src)
		if it.inHeap {
			ln.heapCancelled--
		}
		ln.recycle(popped.slot)
	}
}

// Pending returns the number of live (non-cancelled) events in the queue.
func (env *Env) Pending() int { return env.pending }

// Live returns the number of procs that have started and not yet finished.
func (env *Env) Live() int { return env.live }

// Snapshot returns a sorted description of pending events, for debugging
// stuck simulations.
func (env *Env) Snapshot() []string {
	var out []string
	for _, ln := range env.lanes {
		add := func(e *entry) {
			if ln.items[e.slot&slotIdxMask].cancelled {
				return
			}
			out = append(out, fmt.Sprintf("t=%v seq=%d", e.t, e.seq))
		}
		for i := 0; i < ln.ring.n; i++ {
			add(ln.ring.at(i))
		}
		if ln.headValid {
			add(&ln.head)
		}
		for i := range ln.heap {
			add(&ln.heap[i])
		}
	}
	sort.Strings(out)
	return out
}

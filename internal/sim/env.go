// Package sim provides a deterministic, process-based discrete-event
// simulation kernel in the style of SimPy.
//
// Every component of the simulated cluster (kubelets, schedulers, container
// entrypoints, token managers, workload generators) runs as a Proc: a
// goroutine whose execution is strictly interleaved by the Env scheduler so
// that exactly one proc runs at any instant. Blocking operations (Sleep,
// Event.Wait, Queue.Get, Resource.Acquire) hand control back to the
// scheduler, which advances virtual time to the next pending event. The
// result is a concurrent programming model with fully deterministic,
// seed-reproducible executions — hours of simulated cluster time complete in
// milliseconds of real time.
//
// The kernel is intentionally free of wall-clock dependencies; virtual time
// is a time.Duration offset from the simulation epoch.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// item is a scheduled callback in the event heap.
type item struct {
	t   time.Duration
	seq uint64 // FIFO tie-break among events with equal t
	fn  func()
	// cancelled items stay in the heap but are skipped when popped.
	cancelled bool
}

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Env is a simulation environment: a virtual clock plus an event queue.
// An Env and everything attached to it must be driven from a single
// goroutine (the one calling Run/RunUntil/Step); the kernel provides the
// interleaving, not the Go scheduler.
type Env struct {
	now     time.Duration
	queue   eventHeap
	seq     uint64
	yield   chan struct{} // procs signal the scheduler here when they park or finish
	current *Proc         // proc currently executing, nil when the scheduler runs
	live    int           // procs that have started and not yet finished
	nextPID int
	running bool
	tracer  func(t time.Duration, format string, args ...any)
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time as an offset from the simulation epoch.
func (env *Env) Now() time.Duration { return env.now }

// SetTracer installs a trace sink invoked by Proc.Tracef and internal
// lifecycle points. A nil tracer (the default) disables tracing.
func (env *Env) SetTracer(fn func(t time.Duration, format string, args ...any)) {
	env.tracer = fn
}

func (env *Env) tracef(format string, args ...any) {
	if env.tracer != nil {
		env.tracer(env.now, format, args...)
	}
}

// schedule enqueues fn to run at absolute time t (clamped to now) and
// returns the heap item so callers can implement cancellation.
func (env *Env) schedule(t time.Duration, fn func()) *item {
	if t < env.now {
		t = env.now
	}
	env.seq++
	it := &item{t: t, seq: env.seq, fn: fn}
	heap.Push(&env.queue, it)
	return it
}

// After schedules fn to run after delay d of virtual time. It returns a
// Timer whose Stop method cancels the callback if it has not yet fired.
func (env *Env) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return &Timer{it: env.schedule(env.now+d, fn)}
}

// At schedules fn at absolute virtual time t (clamped to the present).
func (env *Env) At(t time.Duration, fn func()) *Timer {
	return &Timer{it: env.schedule(t, fn)}
}

// Timer is a handle to a scheduled callback.
type Timer struct{ it *item }

// Stop cancels the timer. It reports whether the callback was still pending.
func (tm *Timer) Stop() bool {
	if tm == nil || tm.it == nil || tm.it.cancelled {
		return false
	}
	tm.it.cancelled = true
	return true
}

// Go spawns fn as a new simulation process that begins executing at the
// current virtual time (after the caller yields). The name appears in traces
// and String output.
func (env *Env) Go(name string, fn func(p *Proc)) *Proc {
	env.nextPID++
	p := &Proc{
		env:    env,
		id:     env.nextPID,
		name:   name,
		resume: make(chan struct{}),
		doneEv: NewEvent(env),
	}
	env.live++
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSignal); !ok {
					panic(r) // real panic in user code: propagate
				}
			}
			p.finished = true
			env.live--
			p.doneEv.Trigger(p.killErr)
			env.tracef("proc %s finished", p.name)
			env.yield <- struct{}{}
		}()
		if p.killed { // killed before first execution
			panic(killSignal{})
		}
		fn(p)
	}()
	env.schedule(env.now, func() { env.dispatch(p) })
	return p
}

// dispatch hands the CPU to p until it parks or finishes.
func (env *Env) dispatch(p *Proc) {
	if p.finished {
		return
	}
	env.current = p
	p.resume <- struct{}{}
	<-env.yield
	env.current = nil
}

// Step executes the single earliest pending event. It reports whether an
// event was executed (false means the queue is empty).
func (env *Env) Step() bool {
	for env.queue.Len() > 0 {
		it := heap.Pop(&env.queue).(*item)
		if it.cancelled {
			continue
		}
		if it.t > env.now {
			env.now = it.t
		}
		it.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty. Procs blocked forever (for
// example servers waiting on request queues) do not keep Run alive; like
// SimPy, the simulation ends when no future event exists.
func (env *Env) Run() {
	env.running = true
	for env.Step() {
	}
	env.running = false
}

// RunUntil executes events with time ≤ t and then sets the clock to t.
func (env *Env) RunUntil(t time.Duration) {
	env.running = true
	for env.queue.Len() > 0 {
		// Peek: find the earliest non-cancelled item without popping.
		if env.peekTime() > t {
			break
		}
		env.Step()
	}
	if env.now < t {
		env.now = t
	}
	env.running = false
}

// peekTime returns the time of the earliest live event, or a value past any
// horizon when the queue holds only cancelled items.
func (env *Env) peekTime() time.Duration {
	for env.queue.Len() > 0 {
		if env.queue[0].cancelled {
			heap.Pop(&env.queue)
			continue
		}
		return env.queue[0].t
	}
	return 1<<63 - 1
}

// Pending returns the number of live (non-cancelled) events in the queue.
func (env *Env) Pending() int {
	n := 0
	for _, it := range env.queue {
		if !it.cancelled {
			n++
		}
	}
	return n
}

// Live returns the number of procs that have started and not yet finished.
func (env *Env) Live() int { return env.live }

// Snapshot returns a sorted description of pending events, for debugging
// stuck simulations.
func (env *Env) Snapshot() []string {
	var out []string
	for _, it := range env.queue {
		if !it.cancelled {
			out = append(out, fmt.Sprintf("t=%v seq=%d", it.t, it.seq))
		}
	}
	sort.Strings(out)
	return out
}

package sim

import "time"

// waiter is one parked proc waiting on a synchronization object. The woken
// flag guards against double-wake (e.g. a Trigger racing a timeout or Kill).
type waiter struct {
	p     *Proc
	woken bool
	val   any
	ok    bool
}

// stale reports whether this entry must be skipped by producers: it was
// already woken by another path, or its proc died while parked.
func (w *waiter) stale() bool { return w.woken || w.p.killed || w.p.finished }

// Event is a one-shot broadcast condition with an attached value. Waiting on
// an already-triggered event returns immediately with the stored value, so
// events double as promises/futures.
type Event struct {
	env     *Env
	fired   bool
	val     any
	waiters []*waiter
}

// NewEvent returns an untriggered event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Fired reports whether the event has been triggered.
func (e *Event) Fired() bool { return e.fired }

// Value returns the value the event was triggered with (nil before firing).
func (e *Event) Value() any { return e.val }

// Trigger fires the event, waking every waiter with val. Triggering an
// already-fired event is a no-op, so racing producers are safe.
func (e *Event) Trigger(val any) {
	if e.fired {
		return
	}
	e.fired = true
	e.val = val
	for _, w := range e.waiters {
		if w.stale() {
			continue
		}
		w.woken = true
		w.val = val
		w.ok = true
		p := w.p
		e.env.schedule(e.env.now, func() { e.env.dispatch(p) })
	}
	e.waiters = nil
}

// Wait parks p until the event fires and returns the trigger value.
func (p *Proc) Wait(e *Event) any {
	p.checkRunning()
	if e.fired {
		return e.val
	}
	w := &waiter{p: p}
	e.waiters = append(e.waiters, w)
	p.park()
	return w.val
}

// WaitTimeout parks p until the event fires or d elapses. The second result
// reports whether the event fired (true) or the wait timed out (false).
func (p *Proc) WaitTimeout(e *Event, d time.Duration) (any, bool) {
	p.checkRunning()
	if e.fired {
		return e.val, true
	}
	w := &waiter{p: p}
	e.waiters = append(e.waiters, w)
	tm := p.env.After(d, func() {
		if w.stale() {
			return
		}
		w.woken = true
		w.ok = false
		p.env.dispatch(p)
	})
	p.pending = append(p.pending, tm.it)
	p.park()
	tm.Stop()
	return w.val, w.ok
}

// WaitAny parks p until any of the given events fires and returns the index
// of the first event that fired together with its value. Events already
// fired are served in argument order without parking.
func (p *Proc) WaitAny(events ...*Event) (int, any) {
	p.checkRunning()
	if len(events) == 0 {
		panic("sim: WaitAny with no events would park forever")
	}
	for i, e := range events {
		if e.fired {
			return i, e.val
		}
	}
	// Register a shared waiter entry on every event; whichever Trigger runs
	// first flips woken and the rest become stale no-ops. The index is
	// recovered post-park by scanning fired flags in argument order.
	w := &waiter{p: p}
	for _, e := range events {
		e.waiters = append(e.waiters, w)
	}
	p.park()
	for i, e := range events {
		if e.fired {
			return i, w.val
		}
	}
	return -1, w.val
}

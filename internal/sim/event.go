package sim

import "time"

// waiter is one parked proc waiting on a synchronization object. The woken
// flag guards against double-wake (e.g. a Trigger racing a timeout or Kill).
// Waiters are pooled on the Env; the generation counter invalidates stale
// references left behind in waiter lists after the proc resumed elsewhere.
type waiter struct {
	p     *Proc
	gen   uint32
	woken bool
	val   any
	ok    bool
}

// waiterRef is a generation-stamped reference held in a waiter list. The
// waiter itself may be recycled (and re-issued to another proc) while the
// reference lingers; the gen check detects that.
type waiterRef struct {
	w   *waiter
	gen uint32
}

// stale reports whether this entry must be skipped by producers: the waiter
// was recycled, already woken by another path, or its proc died while parked.
func (r waiterRef) stale() bool {
	w := r.w
	return w.gen != r.gen || w.woken || w.p.killed || w.p.finished
}

// waiter pool -------------------------------------------------------------

func (env *Env) newWaiter(p *Proc) *waiter {
	if n := len(env.freeWaiters); n > 0 {
		w := env.freeWaiters[n-1]
		env.freeWaiters[n-1] = nil
		env.freeWaiters = env.freeWaiters[:n-1]
		w.p = p
		return w
	}
	return &waiter{p: p}
}

// recycleWaiter returns w to the pool, bumping the generation so lingering
// waiterRefs become stale. Only the normal resume path recycles; a
// kill-unwound proc leaks its waiter to the GC, which is safe.
func (env *Env) recycleWaiter(w *waiter) {
	w.gen++
	w.p = nil
	w.woken = false
	w.val = nil
	w.ok = false
	env.freeWaiters = append(env.freeWaiters, w)
}

// Event is a one-shot broadcast condition with an attached value. Waiting on
// an already-triggered event returns immediately with the stored value, so
// events double as promises/futures.
type Event struct {
	env     *Env
	fired   bool
	val     any
	waiters []waiterRef
	pruneAt int // amortized sweep threshold for stale refs
}

// NewEvent returns an untriggered event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Fired reports whether the event has been triggered.
func (e *Event) Fired() bool { return e.fired }

// Value returns the value the event was triggered with (nil before firing).
func (e *Event) Value() any { return e.val }

// Reset returns a fired event to the untriggered state so its owner can
// reuse it as a fresh one-shot instead of allocating a new Event. The caller
// must own the event's full lifecycle: every Wait on the previous firing
// must have returned, and no one may hold the old Event expecting Fired to
// stay true. Stale waiter references (procs killed while parked here) are
// swept; resetting an event with live parked waiters would strand them, so
// that panics.
func (e *Event) Reset() {
	if len(e.waiters) != 0 {
		for _, r := range e.waiters {
			if !r.stale() {
				panic("sim: Reset of an Event with parked waiters")
			}
		}
		for i := range e.waiters {
			e.waiters[i] = waiterRef{}
		}
		e.waiters = e.waiters[:0]
	}
	e.fired = false
	e.val = nil
}

// register appends a waiter reference, sweeping stale refs (from timeouts
// and kills) once they could dominate the list, so an event waited on with
// timeouts forever does not grow without bound.
func (e *Event) register(w *waiter) {
	if len(e.waiters) >= 8 && len(e.waiters) >= e.pruneAt {
		live := e.waiters[:0]
		for _, r := range e.waiters {
			if !r.stale() {
				live = append(live, r)
			}
		}
		for i := len(live); i < len(e.waiters); i++ {
			e.waiters[i] = waiterRef{}
		}
		e.waiters = live
		e.pruneAt = 2 * (len(live) + 8)
	}
	e.waiters = append(e.waiters, waiterRef{w: w, gen: w.gen})
}

// Trigger fires the event, waking every waiter with val. Triggering an
// already-fired event is a no-op, so racing producers are safe.
func (e *Event) Trigger(val any) {
	if e.fired {
		return
	}
	e.fired = true
	e.val = val
	for i, r := range e.waiters {
		if !r.stale() {
			w := r.w
			w.woken = true
			w.val = val
			w.ok = true
			e.env.enqueue(e.env.now, w.p, nil)
		}
		e.waiters[i] = waiterRef{}
	}
	e.waiters = e.waiters[:0]
	e.pruneAt = 0
}

// Wait parks p until the event fires and returns the trigger value.
func (p *Proc) Wait(e *Event) any {
	p.checkRunning()
	if e.fired {
		return e.val
	}
	w := p.env.newWaiter(p)
	e.register(w)
	p.park()
	v := w.val
	p.env.recycleWaiter(w)
	return v
}

// WaitTimeout parks p until the event fires or d elapses. The second result
// reports whether the event fired (true) or the wait timed out (false).
func (p *Proc) WaitTimeout(e *Event, d time.Duration) (any, bool) {
	p.checkRunning()
	if e.fired {
		return e.val, true
	}
	w := p.env.newWaiter(p)
	e.register(w)
	ref := waiterRef{w: w, gen: w.gen}
	tm := p.env.After(d, func() {
		if ref.stale() {
			return
		}
		w.woken = true
		w.ok = false
		p.env.dispatch(p)
	})
	p.pending = append(p.pending, procTimer{slot: tm.slot, gen: tm.gen})
	p.park()
	tm.Stop()
	v, ok := w.val, w.ok
	p.env.recycleWaiter(w)
	return v, ok
}

// WaitAny parks p until any of the given events fires and returns the index
// of the first event that fired together with its value. Events already
// fired are served in argument order without parking.
func (p *Proc) WaitAny(events ...*Event) (int, any) {
	p.checkRunning()
	if len(events) == 0 {
		panic("sim: WaitAny with no events would park forever")
	}
	for i, e := range events {
		if e.fired {
			return i, e.val
		}
	}
	// Register a shared waiter entry on every event; whichever Trigger runs
	// first flips woken and the rest become stale no-ops. The index is
	// recovered post-park by scanning fired flags in argument order.
	w := p.env.newWaiter(p)
	for _, e := range events {
		e.register(w)
	}
	p.park()
	v := w.val
	p.env.recycleWaiter(w)
	for i, e := range events {
		if e.fired {
			return i, v
		}
	}
	return -1, v
}

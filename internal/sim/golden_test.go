package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current kernel")

// goldenScenario drives a small but representative simulation — timers,
// sleeps, queue handoffs, events with timeouts, resource contention, kills —
// and returns the full trace. The recorded golden was produced by the
// pre-optimization kernel (container/heap + slice shifts), so matching it
// proves the rewritten kernel preserves event ordering exactly.
//
// The scenario is lane-parametric: procs are spread across `lanes` event
// lanes by name hash, so the same golden also locks the lane merge — the
// (instant, seq) k-way pop must reproduce the monolithic queue's order
// byte-for-byte at every lane count.
func goldenScenario(lanes int) string {
	var b strings.Builder
	env := NewEnv()
	env.SetLanes(lanes)
	spawn := func(name string, fn func(p *Proc)) *Proc {
		return env.GoOnLane(env.LaneOf(name), name, fn)
	}
	env.SetTracer(func(at time.Duration, format string, args ...any) {
		fmt.Fprintf(&b, "%v "+format+"\n", append([]any{at}, args...)...)
	})

	q := NewQueue[int](env)
	res := NewResource(env, 2)
	done := NewEvent(env)

	env.After(5*time.Millisecond, func() { env.tracef("timer-5ms") })
	stopped := env.After(7*time.Millisecond, func() { env.tracef("timer-7ms (must not fire)") })
	env.At(3*time.Millisecond, func() {
		env.tracef("timer-3ms stops timer-7ms: %v", stopped.Stop())
	})

	for i := 0; i < 3; i++ {
		i := i
		spawn(fmt.Sprintf("producer-%d", i), func(p *Proc) {
			for j := 0; j < 4; j++ {
				p.Sleep(time.Duration(i+1) * time.Millisecond)
				q.Put(i*10 + j)
				p.Tracef("put %d", i*10+j)
			}
		})
	}
	spawn("consumer", func(p *Proc) {
		for k := 0; k < 12; k++ {
			v, ok := q.Get(p)
			p.Tracef("got %d ok=%v", v, ok)
		}
		done.Trigger("all-consumed")
	})
	spawn("timeout-getter", func(p *Proc) {
		for {
			v, ok := q.GetTimeout(p, 500*time.Microsecond)
			p.Tracef("timeout-get %d ok=%v", v, ok)
			if ok {
				return
			}
			p.Sleep(2500 * time.Microsecond)
		}
	})
	for _, name := range []string{"worker-a", "worker-b", "worker-c"} {
		name := name
		spawn(name, func(p *Proc) {
			res.Acquire(p, 1)
			p.Tracef("acquired")
			p.Sleep(4 * time.Millisecond)
			res.Release(1)
			p.Tracef("released")
		})
	}
	victim := spawn("victim", func(p *Proc) {
		p.Sleep(time.Hour)
	})
	spawn("killer", func(p *Proc) {
		p.Sleep(6 * time.Millisecond)
		victim.Kill(nil)
		p.Tracef("killed victim")
	})
	spawn("waiter", func(p *Proc) {
		v, ok := p.WaitTimeout(done, 2*time.Millisecond)
		p.Tracef("wait-1 %v %v", v, ok)
		v = p.Wait(done)
		p.Tracef("wait-2 %v", v)
	})
	env.Run()
	fmt.Fprintf(&b, "end now=%v pending=%d live=%d\n", env.Now(), env.Pending(), env.Live())
	return b.String()
}

// TestKernelGoldenTrace locks the event ordering of the kernel against the
// trace recorded from the pre-optimization implementation — at every lane
// count. The golden is recorded once (single lane); lane counts 2, 4 and 8
// must reproduce it byte-for-byte, proving the lane merge is order-neutral.
func TestKernelGoldenTrace(t *testing.T) {
	got := goldenScenario(1)
	path := filepath.Join("testdata", "kernel_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to record): %v", err)
	}
	if got != string(want) {
		t.Fatalf("kernel trace diverged from the recorded golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// And the scenario itself must be deterministic run-to-run.
	if again := goldenScenario(1); again != got {
		t.Fatalf("same-process rerun diverged:\n--- first ---\n%s\n--- second ---\n%s", got, again)
	}
	for _, lanes := range []int{2, 4, 8} {
		if lt := goldenScenario(lanes); lt != got {
			t.Fatalf("lanes=%d trace diverged from single-lane golden.\n--- lanes=%d ---\n%s\n--- lanes=1 ---\n%s", lanes, lanes, lt, got)
		}
	}
}

package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// Event lanes partition the kernel's queue state so that multi-core work can
// be expressed without giving up determinism.
//
// Each lane owns a full copy of the queue machinery — item slab, free list,
// same-instant FIFO ring, head register and 4-ary heap — and events are
// routed to the lane of the proc (or callback context) that scheduled them.
// The kernel itself still executes one event at a time: Step pops the global
// (instant, seq) minimum across all lane fronts, a conservative lock-step
// merge. Because seq is a single global counter assigned at schedule time,
// the merged order is exactly the order a monolithic queue would produce —
// a fixed seed yields a byte-identical event order at any lane count.
//
// Real parallelism happens *between* events, inside a FanOut window: every
// lane advances on its own goroutine between two synchronization barriers
// (the FanOut call and its return). Window code must be read-only with
// respect to simulation state — enqueue panics inside a window — and lanes
// exchange results exclusively through the cross-lane mailbox (LaneSend /
// LaneDrain), which the barrier drains in deterministic (from-lane, send
// order). tools/detvet enforces the mailbox rule statically.

const (
	// laneShift splits a slot handle into lane (high bits) and slab index
	// (low bits): up to 256 lanes of 16M concurrent events each.
	laneShift   = 24
	slotIdxMask = 1<<laneShift - 1
	// MaxLanes bounds SetLanes; the pop-side merge is O(lanes), so lanes
	// should track physical cores, not cluster size.
	MaxLanes = 256
)

// laneQ is one lane's queue state: the slot slab plus the three-way queue
// (ring / head register / heap) described in the package comment.
type laneQ struct {
	// ring holds events scheduled for the current instant, in FIFO order.
	// Invariant: every ring entry has t == now (rings drain before the
	// clock advances), and ring order agrees with seq order.
	ring fifo[entry]
	// head caches one future event — typically the earliest — so the
	// schedule-one/fire-one pattern bypasses the heap. Correctness does not
	// depend on head being the minimum: pops take the minimum of all fronts.
	head      entry
	headValid bool
	// heap is a 4-ary min-heap of future events keyed by (t, seq).
	heap          []entry
	heapCancelled int      // cancelled entries still buried in the heap
	items         []item   // slot-addressed event payloads (this lane's slab)
	freeSlots     []uint32 // recycled item slots (full handles, lane bits set)
}

// newSlot returns a free slot handle in this lane, lane bits included.
func (ln *laneQ) newSlot(lane int) uint32 {
	if n := len(ln.freeSlots); n > 0 {
		s := ln.freeSlots[n-1]
		ln.freeSlots = ln.freeSlots[:n-1]
		return s
	}
	if len(ln.items) > slotIdxMask {
		panic("sim: lane slab full")
	}
	ln.items = append(ln.items, item{})
	return uint32(lane)<<laneShift | uint32(len(ln.items)-1)
}

// recycle bumps the generation (invalidating outstanding Timers) and returns
// the slot to the lane's pool. Called exactly once per scheduled event, when
// its entry leaves the ring, head register or heap.
func (ln *laneQ) recycle(slot uint32) {
	it := &ln.items[slot&slotIdxMask]
	it.gen++
	it.cancelled = false
	it.inHeap = false
	ln.freeSlots = append(ln.freeSlots, slot)
}

// demoteHead moves the head-register entry into the heap; the caller
// immediately refills (or invalidates) the register.
func (ln *laneQ) demoteHead() {
	hit := &ln.items[ln.head.slot&slotIdxMask]
	hit.inHeap = true
	if hit.cancelled {
		ln.heapCancelled++
	}
	ln.heapPush(ln.head)
}

func (ln *laneQ) popFrom(src int) entry {
	switch src {
	case srcRing:
		return ln.ring.pop()
	case srcHead:
		ln.headValid = false
		return ln.head
	default:
		return ln.heapPop()
	}
}

// 4-ary heap --------------------------------------------------------------
//
// Children of node i live at 4i+1..4i+4, the parent at (i-1)/4. Compared to
// a binary heap this halves the tree depth (fewer cache lines touched per
// sift) at the cost of three extra comparisons per level on the way down.

func (ln *laneQ) heapPush(e entry) {
	h := append(ln.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	ln.heap = h
}

func (ln *laneQ) heapPop() entry {
	h := ln.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	ln.heap = h[:n]
	if n > 1 {
		ln.siftDown(0)
	}
	return top
}

func (ln *laneQ) siftDown(i int) {
	h := ln.heap
	n := len(h)
	for {
		min := i
		c := i<<2 + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if entryLess(&h[c], &h[min]) {
				min = c
			}
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// compact removes cancelled entries in place, recycles their slots and
// re-heapifies (Floyd's bottom-up construction).
func (ln *laneQ) compact() {
	h := ln.heap[:0]
	for _, e := range ln.heap {
		if ln.items[e.slot&slotIdxMask].cancelled {
			ln.recycle(e.slot)
			continue
		}
		h = append(h, e)
	}
	ln.heap = h
	for i := (len(h) - 2) >> 2; i >= 0; i-- {
		ln.siftDown(i)
	}
	ln.heapCancelled = 0
}

// lane API ----------------------------------------------------------------

// SetLanes partitions the environment into n event lanes. It must be called
// before anything is scheduled (right after NewEnv): repartitioning a live
// queue would tear slot handles out of their slabs.
func (env *Env) SetLanes(n int) {
	if n < 1 || n > MaxLanes {
		panic(fmt.Sprintf("sim: SetLanes(%d): lane count must be in [1, %d]", n, MaxLanes))
	}
	if env.seq != 0 || env.live != 0 {
		panic("sim: SetLanes after events were scheduled; call it before first use")
	}
	env.lanes = make([]*laneQ, n)
	for i := range env.lanes {
		env.lanes[i] = &laneQ{}
	}
	env.mail = nil
}

// Lanes returns the number of event lanes (always ≥ 1).
func (env *Env) Lanes() int { return len(env.lanes) }

// Lane returns the lane of the currently executing event (0 between events).
func (env *Env) Lane() int { return env.curLane }

// LaneOf maps a partition key (a node group, pod or shard name) to a lane by
// stable FNV-1a hash. The mapping depends only on the key and the lane
// count, never on scheduling history.
func (env *Env) LaneOf(key string) int {
	if len(env.lanes) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(env.lanes)))
}

// GoOnLane is Go with an explicit lane affinity: the proc and every event it
// schedules (sleeps, timers, wakeups addressed to it) live on that lane.
func (env *Env) GoOnLane(lane int, name string, fn func(p *Proc)) *Proc {
	if lane < 0 || lane >= len(env.lanes) {
		panic(fmt.Sprintf("sim: GoOnLane(%d) with %d lanes", lane, len(env.lanes)))
	}
	return env.spawn(name, fn, false, lane)
}

// FanOut opens a parallel window: fn(lane) runs once per lane, concurrently
// on one goroutine per lane, and FanOut returns only when every lane has
// finished — the call and its return are the window's synchronization
// barriers. Between the barriers the simulation is frozen: window code must
// not schedule events (enqueue panics), mutate shared simulation state, or
// touch another lane's data except through LaneSend. With one lane — or one
// available CPU — the window degrades to an inline loop; results must
// therefore never depend on the execution interleaving, only on the lane
// argument.
func (env *Env) FanOut(fn func(lane int)) {
	if env.inWindow {
		panic("sim: nested FanOut window")
	}
	n := len(env.lanes)
	if env.mail == nil {
		env.mail = make([][][]any, n)
		for i := range env.mail {
			env.mail[i] = make([][]any, n)
		}
	}
	env.inWindow = true
	defer func() { env.inWindow = false }()
	if n == 1 || runtime.GOMAXPROCS(0) == 1 {
		// Degraded (serial) window: same read-only rules, no goroutines.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for i := 1; i < n; i++ {
		go func(lane int) {
			defer wg.Done()
			fn(lane)
		}(i)
	}
	fn(0)
	wg.Wait()
}

// LaneSend posts v from lane `from` to lane `to`'s mailbox. It is the only
// legal cross-lane channel inside a FanOut window: each (from, to) mailbox
// is written by exactly one goroutine, so sends are race-free without locks,
// and the deterministic drain order erases the window's real-time
// interleaving. Callable only for the sender's own lane.
func (env *Env) LaneSend(from, to int, v any) {
	env.mail[from][to] = append(env.mail[from][to], v)
}

// LaneDrain returns and clears every message addressed to lane `to`, merged
// in (sending lane, send order) — a deterministic order independent of how
// the window's goroutines actually interleaved. Call it after the barrier
// (outside the window) to collect lane results.
func (env *Env) LaneDrain(to int) []any {
	if env.mail == nil {
		return nil
	}
	var out []any
	for from := range env.mail {
		box := env.mail[from][to]
		if len(box) == 0 {
			continue
		}
		out = append(out, box...)
		for i := range box {
			box[i] = nil
		}
		env.mail[from][to] = box[:0]
	}
	return out
}

package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestLaneRoutingAndMerge spreads procs across lanes and checks the merged
// execution order matches the single-lane run exactly (the golden test does
// this too, via traces; this is the focused unit variant).
func TestLaneRoutingAndMerge(t *testing.T) {
	run := func(lanes int) []string {
		env := NewEnv()
		env.SetLanes(lanes)
		var order []string
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("p%d", i)
			d := time.Duration(6-i) * time.Millisecond
			env.GoOnLane(env.LaneOf(name), name, func(p *Proc) {
				p.Sleep(d)
				order = append(order, p.Name())
			})
		}
		env.Run()
		return order
	}
	want := run(1)
	for _, lanes := range []int{2, 3, 8} {
		got := run(lanes)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("lanes=%d order %v != single-lane order %v", lanes, got, want)
		}
	}
}

// TestLaneInheritance checks procs and their events stay on the spawning
// lane: a proc spawned from lane 2 code lives on lane 2.
func TestLaneInheritance(t *testing.T) {
	env := NewEnv()
	env.SetLanes(4)
	var childLane, timerLane = -1, -1
	env.GoOnLane(2, "parent", func(p *Proc) {
		env.Go("child", func(c *Proc) {
			childLane = c.lane
		})
		env.After(time.Millisecond, func() {
			timerLane = env.Lane()
		})
		p.Sleep(2 * time.Millisecond)
	})
	env.Run()
	if childLane != 2 || timerLane != 2 {
		t.Fatalf("child lane=%d timer lane=%d, want 2/2", childLane, timerLane)
	}
}

// TestLaneOfStable checks the key→lane map depends only on (key, laneCount).
func TestLaneOfStable(t *testing.T) {
	a, b := NewEnv(), NewEnv()
	a.SetLanes(8)
	b.SetLanes(8)
	for _, k := range []string{"node-0", "node-1", "sharepod-999", ""} {
		if a.LaneOf(k) != b.LaneOf(k) {
			t.Fatalf("LaneOf(%q) differs across envs", k)
		}
		if l := a.LaneOf(k); l < 0 || l >= 8 {
			t.Fatalf("LaneOf(%q)=%d out of range", k, l)
		}
	}
}

// TestFanOutMailbox checks the parallel window runs every lane exactly once
// and the mailbox drains in deterministic (from-lane, send-order) order
// regardless of real-time interleaving.
func TestFanOutMailbox(t *testing.T) {
	env := NewEnv()
	env.SetLanes(8)
	var ran atomic.Int32
	env.Go("driver", func(p *Proc) {
		for round := 0; round < 50; round++ {
			env.FanOut(func(lane int) {
				ran.Add(1)
				env.LaneSend(lane, 0, lane*10)
				env.LaneSend(lane, 0, lane*10+1)
			})
			got := env.LaneDrain(0)
			if len(got) != 16 {
				t.Errorf("round %d: drained %d messages, want 16", round, len(got))
				return
			}
			for lane := 0; lane < 8; lane++ {
				for j := 0; j < 2; j++ {
					if got[lane*2+j] != lane*10+j {
						t.Errorf("round %d: msg[%d]=%v, want %d", round, lane*2+j, got[lane*2+j], lane*10+j)
						return
					}
				}
			}
			if extra := env.LaneDrain(0); len(extra) != 0 {
				t.Errorf("second drain returned %d messages, want 0", len(extra))
				return
			}
		}
	})
	env.Run()
	if ran.Load() != 50*8 {
		t.Fatalf("fan-out ran %d lane tasks, want %d", ran.Load(), 50*8)
	}
}

// TestFanOutEnqueueGuard checks that scheduling an event from inside a
// parallel window panics: lane code must stay read-only until the barrier.
func TestFanOutEnqueueGuard(t *testing.T) {
	env := NewEnv()
	env.SetLanes(2)
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue inside FanOut window did not panic")
		}
	}()
	env.Go("driver", func(p *Proc) {
		env.FanOut(func(lane int) {
			if lane == 0 { // panic deterministically from the caller's lane
				env.After(time.Millisecond, func() {})
			}
		})
	})
	env.Run()
}

// TestNestedFanOutPanics checks reentrant windows are rejected.
func TestNestedFanOutPanics(t *testing.T) {
	env := NewEnv()
	env.SetLanes(2)
	defer func() {
		if recover() == nil {
			t.Fatal("nested FanOut did not panic")
		}
	}()
	env.FanOut(func(lane int) {
		if lane == 0 {
			env.FanOut(func(int) {})
		}
	})
}

// TestSetLanesAfterUsePanics checks repartitioning a live queue is rejected.
func TestSetLanesAfterUsePanics(t *testing.T) {
	env := NewEnv()
	env.After(time.Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetLanes after scheduling did not panic")
		}
	}()
	env.SetLanes(4)
}

// TestLaneTimerCancelAcrossLanes checks Timer handles resolve their owning
// lane's slab: stop/active work for timers created on non-zero lanes.
func TestLaneTimerCancelAcrossLanes(t *testing.T) {
	env := NewEnv()
	env.SetLanes(4)
	fired := false
	env.GoOnLane(3, "owner", func(p *Proc) {
		tm := env.After(5*time.Millisecond, func() { fired = true })
		if !tm.Active() {
			t.Error("timer inactive after creation")
		}
		p.Sleep(time.Millisecond)
		if !tm.Stop() {
			t.Error("Stop returned false for pending timer")
		}
		if tm.Active() {
			t.Error("timer active after Stop")
		}
		p.Sleep(10 * time.Millisecond)
	})
	env.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

// TestFanOutParallelReadOnly exercises a realistic window under the race
// detector: every lane scans a shared read-only slice and reports a partial
// sum through the mailbox.
func TestFanOutParallelReadOnly(t *testing.T) {
	env := NewEnv()
	env.SetLanes(4)
	data := make([]int, 4096)
	for i := range data {
		data[i] = i
	}
	total := 0
	env.Go("driver", func(p *Proc) {
		env.FanOut(func(lane int) {
			sum := 0
			for i := lane; i < len(data); i += 4 {
				sum += data[i]
			}
			env.LaneSend(lane, 0, sum)
		})
		for _, v := range env.LaneDrain(0) {
			total += v.(int)
		}
	})
	env.Run()
	want := len(data) * (len(data) - 1) / 2
	if total != want {
		t.Fatalf("fan-out sum=%d, want %d", total, want)
	}
}

package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrKilled is the error delivered to waiters of a proc that was terminated
// with Kill before its body returned.
var ErrKilled = errors.New("sim: proc killed")

// killSignal is panicked inside a killed proc to unwind its stack; the proc
// runner recovers it. User code must not recover it (re-panic if it does).
type killSignal struct{}

// Proc is a simulation process: a goroutine whose execution is interleaved
// by the Env scheduler. All blocking methods must be called from the proc's
// own body (they park the calling proc).
type Proc struct {
	env      *Env
	id       int
	name     string
	resume   chan struct{}
	finished bool
	killed   bool
	killErr  error
	doneEv   *Event
	// pending tracks heap items that would wake this proc from its current
	// park (sleep wakes, timeout timers); Kill cancels them so a dead proc
	// cannot drag the virtual clock forward.
	pending []*item
}

// Env returns the environment the proc runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// ID returns the proc's unique id within its Env.
func (p *Proc) ID() int { return p.id }

func (p *Proc) String() string { return fmt.Sprintf("proc#%d(%s)", p.id, p.name) }

// Done returns an event that fires when the proc finishes; its value is nil
// for normal completion or the kill reason for killed procs.
func (p *Proc) Done() *Event { return p.doneEv }

// Finished reports whether the proc body has returned or been unwound.
func (p *Proc) Finished() bool { return p.finished }

// Killed reports whether Kill has been requested. Long-running procs that
// loop without blocking should poll this and return voluntarily.
func (p *Proc) Killed() bool { return p.killed }

// Tracef emits a trace line through the environment's tracer, prefixed with
// the proc name.
func (p *Proc) Tracef(format string, args ...any) {
	p.env.tracef("[%s] "+format, append([]any{p.name}, args...)...)
}

// park hands control back to the scheduler and blocks until resumed. On
// resume it honours a pending kill by unwinding the stack.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
	p.pending = p.pending[:0]
	if p.killed {
		panic(killSignal{})
	}
}

// checkRunning panics when a blocking primitive is invoked from outside the
// proc's own execution context; this always indicates a harness bug.
func (p *Proc) checkRunning() {
	if p.env.current != p {
		panic(fmt.Sprintf("sim: blocking call on %v from outside its context (current=%v)", p, p.env.current))
	}
	if p.killed {
		panic(killSignal{})
	}
}

// Sleep parks the proc for d of virtual time (negative durations count as
// zero).
func (p *Proc) Sleep(d time.Duration) {
	p.checkRunning()
	if d < 0 {
		d = 0
	}
	it := p.env.schedule(p.env.now+d, func() { p.env.dispatch(p) })
	p.pending = append(p.pending, it)
	p.park()
}

// Yield reschedules the proc at the current instant, letting every other
// event already queued for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Hibernate parks the proc indefinitely; only Kill resumes (unwinds) it.
// Unlike a long Sleep loop, a hibernating proc schedules no events, so it
// does not keep Env.Run alive.
func (p *Proc) Hibernate() { p.Wait(NewEvent(p.env)) }

// Kill terminates the target proc: the next time it would run it unwinds
// instead, firing Done with reason (ErrKilled when reason is nil). Killing a
// finished proc is a no-op. A proc may not kill itself; it should return.
func (p *Proc) Kill(reason error) {
	if p.finished || p.killed {
		return
	}
	if reason == nil {
		reason = ErrKilled
	}
	p.killed = true
	p.killErr = reason
	if p.env.current == p {
		panic("sim: proc cannot Kill itself; return from its body instead")
	}
	for _, it := range p.pending {
		it.cancelled = true
	}
	p.pending = nil
	// Wake it so the unwind happens promptly even if it was parked on a
	// queue or event; stale waiter entries are skipped via their woken flag.
	p.env.schedule(p.env.now, func() { p.env.dispatch(p) })
}

// WaitProc blocks until other finishes and returns its completion error
// (nil, or the kill reason).
func (p *Proc) WaitProc(other *Proc) error {
	if other.finished {
		return other.killErr
	}
	v := p.Wait(other.doneEv)
	if v == nil {
		return nil
	}
	return v.(error)
}

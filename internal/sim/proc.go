package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrKilled is the error delivered to waiters of a proc that was terminated
// with Kill before its body returned.
var ErrKilled = errors.New("sim: proc killed")

// killSignal is panicked inside a killed proc to unwind its stack; the proc
// runner recovers it. User code must not recover it (re-panic if it does).
type killSignal struct{}

// procTimer is a generation-stamped reference to a pooled item slot; a gen
// mismatch means the event already fired and the slot was recycled.
type procTimer struct {
	slot uint32
	gen  uint32
}

// Proc is a simulation process: a coroutine whose execution is interleaved
// by the Env scheduler. All blocking methods must be called from the proc's
// own body (they park the calling proc).
type Proc struct {
	env  *Env
	id   int
	name string
	// next resumes the coroutine until it parks or returns; yield (valid
	// once the body has started) suspends it back to the scheduler.
	next     func() (struct{}, bool)
	yield    func(struct{}) bool
	finished bool
	killed   bool
	daemon   bool
	lane     int // event lane owning this proc's wakeups and timers
	killErr  error
	doneEv   *Event
	// pending tracks scheduled items that would wake this proc from its
	// current park (sleep wakes, timeout timers); Kill cancels them so a
	// dead proc cannot drag the virtual clock forward. The list is cleared
	// on every resume, so it never grows past one park's worth of handles.
	pending []procTimer
}

// Env returns the environment the proc runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// ID returns the proc's unique id within its Env.
func (p *Proc) ID() int { return p.id }

func (p *Proc) String() string { return fmt.Sprintf("proc#%d(%s)", p.id, p.name) }

// Done returns an event that fires when the proc finishes; its value is nil
// for normal completion or the kill reason for killed procs.
func (p *Proc) Done() *Event { return p.doneEv }

// Finished reports whether the proc body has returned or been unwound.
func (p *Proc) Finished() bool { return p.finished }

// Killed reports whether Kill has been requested. Long-running procs that
// loop without blocking should poll this and return voluntarily.
func (p *Proc) Killed() bool { return p.killed }

// Tracef emits a trace line through the environment's tracer, prefixed with
// the proc name.
func (p *Proc) Tracef(format string, args ...any) {
	p.env.tracef("[%s] "+format, append([]any{p.name}, args...)...)
}

// park hands control back to the scheduler and blocks until resumed. On
// resume it honours a pending kill by unwinding the stack.
func (p *Proc) park() {
	if !p.yield(struct{}{}) {
		// The coroutine's consumer was stopped; unwind like a kill.
		panic(killSignal{})
	}
	p.clearPending()
	if p.killed {
		panic(killSignal{})
	}
}

// clearPending drops wake handles from the park that just ended, zeroing the
// slots so the slice does not pin pooled items.
func (p *Proc) clearPending() {
	for i := range p.pending {
		p.pending[i] = procTimer{}
	}
	p.pending = p.pending[:0]
}

// checkRunning panics when a blocking primitive is invoked from outside the
// proc's own execution context; this always indicates a harness bug.
func (p *Proc) checkRunning() {
	if p.env.current != p {
		panic(fmt.Sprintf("sim: blocking call on %v from outside its context (current=%v)", p, p.env.current))
	}
	if p.killed {
		panic(killSignal{})
	}
}

// Sleep parks the proc for d of virtual time (negative durations count as
// zero).
func (p *Proc) Sleep(d time.Duration) {
	p.checkRunning()
	if d < 0 {
		d = 0
	}
	slot, gen := p.env.enqueue(p.env.now+d, p, nil)
	p.pending = append(p.pending, procTimer{slot: slot, gen: gen})
	p.park()
}

// Yield reschedules the proc at the current instant, letting every other
// event already queued for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// Hibernate parks the proc indefinitely; only Kill resumes (unwinds) it.
// Unlike a long Sleep loop, a hibernating proc schedules no events, so it
// does not keep Env.Run alive.
func (p *Proc) Hibernate() { p.Wait(NewEvent(p.env)) }

// Kill terminates the target proc: the next time it would run it unwinds
// instead, firing Done with reason (ErrKilled when reason is nil). Killing a
// finished proc is a no-op. A proc may not kill itself; it should return.
func (p *Proc) Kill(reason error) {
	if p.finished || p.killed {
		return
	}
	if reason == nil {
		reason = ErrKilled
	}
	p.killed = true
	p.killErr = reason
	if p.env.current == p {
		panic("sim: proc cannot Kill itself; return from its body instead")
	}
	for _, pt := range p.pending {
		it := p.env.itemAt(pt.slot)
		if it.gen == pt.gen && !it.cancelled {
			p.env.cancelItem(pt.slot)
		}
	}
	p.clearPending()
	// Wake it so the unwind happens promptly even if it was parked on a
	// queue or event; stale waiter entries are skipped via their woken flag.
	p.env.enqueue(p.env.now, p, nil)
}

// WaitProc blocks until other finishes and returns its completion error
// (nil, or the kill reason).
func (p *Proc) WaitProc(other *Proc) error {
	if other.finished {
		return other.killErr
	}
	v := p.Wait(other.doneEv)
	if v == nil {
		return nil
	}
	return v.(error)
}

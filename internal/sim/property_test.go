package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestPropertyEventOrdering: for any set of delays, callbacks fire in
// nondecreasing time order, and FIFO among equal timestamps.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		env := NewEnv()
		type firing struct {
			at  time.Duration
			seq int
		}
		var fired []firing
		for i, d := range delays {
			i := i
			at := time.Duration(d) * time.Millisecond
			env.At(at, func() { fired = append(fired, firing{env.Now(), i}) })
		}
		env.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false // FIFO violated among ties
			}
		}
		for i, f := range fired {
			if f.at != time.Duration(delays[f.seq])*time.Millisecond {
				_ = i
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQueueConservation: every item put is either consumed exactly
// once or still buffered; FIFO order is preserved per queue.
func TestPropertyQueueConservation(t *testing.T) {
	f := func(nItems uint8, nConsumers uint8) bool {
		n := int(nItems % 64)
		c := int(nConsumers%8) + 1
		env := NewEnv()
		q := NewQueue[int](env)
		var got []int
		for i := 0; i < c; i++ {
			env.Go("c", func(p *Proc) {
				for {
					v, ok := q.GetTimeout(p, time.Hour)
					if !ok {
						return
					}
					got = append(got, v)
				}
			})
		}
		env.Go("p", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(time.Millisecond)
				q.Put(i)
			}
		})
		env.Run()
		if len(got)+q.Len() != n {
			return false
		}
		// Items are produced strictly one per millisecond, so global
		// consumption order must equal production order.
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyResourceNeverOvercommitted: under random acquire/hold/release
// traffic the resource usage never exceeds capacity and returns to zero.
func TestPropertyResourceNeverOvercommitted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		capacity := int64(rng.Intn(8) + 1)
		r := NewResource(env, capacity)
		violated := false
		check := func() {
			if r.InUse() > r.Capacity() || r.InUse() < 0 {
				violated = true
			}
		}
		for i := 0; i < 20; i++ {
			n := int64(rng.Intn(int(capacity)) + 1)
			start := time.Duration(rng.Intn(50)) * time.Millisecond
			hold := time.Duration(rng.Intn(50)+1) * time.Millisecond
			env.At(start, func() {
				env.Go("user", func(p *Proc) {
					r.Acquire(p, n)
					check()
					p.Sleep(hold)
					r.Release(n)
					check()
				})
			})
		}
		env.Run()
		return !violated && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterministicReplay: identical programs produce identical
// traces, event for event.
func TestPropertyDeterministicReplay(t *testing.T) {
	program := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		var trace []string
		q := NewQueue[string](env)
		ev := NewEvent(env)
		for i := 0; i < 10; i++ {
			name := string(rune('A' + i))
			d := time.Duration(rng.Intn(20)) * time.Millisecond
			env.Go(name, func(p *Proc) {
				p.Sleep(d)
				q.Put(name)
				if v, ok := p.WaitTimeout(ev, 5*time.Millisecond); ok {
					trace = append(trace, "ev:"+v.(string))
				}
			})
		}
		env.Go("collector", func(p *Proc) {
			for i := 0; i < 10; i++ {
				v, _ := q.Get(p)
				trace = append(trace, v)
			}
			ev.Trigger("fin")
		})
		env.Run()
		return trace
	}
	f := func(seed int64) bool {
		a, b := program(seed), program(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package sim

import "time"

// qwaiter is a parked getter. It plays the role of waiter but stores the
// delivered value with its static type, so handing an item to a getter never
// boxes it into an interface. Instances are pooled per queue.
type qwaiter[T any] struct {
	p     *Proc
	gen   uint32
	woken bool
	ok    bool
	val   T
}

// qref is a generation-stamped reference to a pooled qwaiter, held in the
// getter ring; see waiterRef for the staleness rules.
type qref[T any] struct {
	qw  *qwaiter[T]
	gen uint32
}

func (r qref[T]) stale() bool {
	qw := r.qw
	return qw.gen != r.gen || qw.woken || qw.p.killed || qw.p.finished
}

// Queue is an unbounded FIFO channel between procs. Put never blocks; Get
// parks the caller until an item is available. Items are delivered in
// arrival order and getters are served in arrival order.
//
// If a parked getter is Killed after an item has been assigned to it but
// before it resumes, that item is dropped — the same semantics as a message
// delivered to a dead process.
type Queue[T any] struct {
	env     *Env
	items   fifo[T]
	getters fifo[qref[T]]
	free    []*qwaiter[T]
	pruneAt int // amortized sweep threshold for stale getter refs
	closed  bool
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] { return &Queue[T]{env: env} }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return q.items.len() }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

func (q *Queue[T]) newWaiter(p *Proc) *qwaiter[T] {
	if n := len(q.free); n > 0 {
		qw := q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
		qw.p = p
		return qw
	}
	return &qwaiter[T]{p: p}
}

func (q *Queue[T]) recycleWaiter(qw *qwaiter[T]) {
	var zero T
	qw.gen++
	qw.p = nil
	qw.woken = false
	qw.ok = false
	qw.val = zero
	q.free = append(q.free, qw)
}

// registerGetter parks bookkeeping for a getter, sweeping stale refs (from
// timeouts and kills) once they could dominate the ring.
func (q *Queue[T]) registerGetter(qw *qwaiter[T]) {
	if q.getters.len() >= 8 && q.getters.len() >= q.pruneAt {
		q.getters.compact(func(r *qref[T]) bool { return !r.stale() })
		q.pruneAt = 2 * (q.getters.len() + 8)
	}
	q.getters.push(qref[T]{qw: qw, gen: qw.gen})
}

// Put appends v and wakes the oldest parked getter, if any. Put on a closed
// queue panics, mirroring send-on-closed-channel.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	for q.getters.len() > 0 {
		r := q.getters.pop()
		if r.stale() {
			continue // entry from a timeout or a killed proc
		}
		qw := r.qw
		qw.woken = true
		qw.val = v
		qw.ok = true
		q.env.enqueue(q.env.now, qw.p, nil)
		return
	}
	q.items.push(v)
}

// Close wakes every parked getter with ok=false. Buffered items remain
// retrievable via TryGet/Get until drained.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for q.getters.len() > 0 {
		r := q.getters.pop()
		if r.stale() {
			continue
		}
		qw := r.qw
		qw.woken = true
		qw.ok = false
		q.env.enqueue(q.env.now, qw.p, nil)
	}
}

// TryGet pops the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if q.items.len() == 0 {
		var zero T
		return zero, false
	}
	return q.items.pop(), true
}

// Get pops the oldest item, parking p until one arrives. The second result
// is false only when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (T, bool) {
	p.checkRunning()
	if v, ok := q.TryGet(); ok {
		return v, true
	}
	if q.closed {
		var zero T
		return zero, false
	}
	qw := q.newWaiter(p)
	q.registerGetter(qw)
	p.park()
	v, ok := qw.val, qw.ok
	q.recycleWaiter(qw)
	return v, ok
}

// GetTimeout is Get with a deadline; the second result is false on timeout
// or close.
func (q *Queue[T]) GetTimeout(p *Proc, d time.Duration) (T, bool) {
	p.checkRunning()
	if v, ok := q.TryGet(); ok {
		return v, true
	}
	if q.closed {
		var zero T
		return zero, false
	}
	qw := q.newWaiter(p)
	q.registerGetter(qw)
	ref := qref[T]{qw: qw, gen: qw.gen}
	tm := p.env.After(d, func() {
		if ref.stale() {
			return
		}
		qw.woken = true
		qw.ok = false
		p.env.dispatch(p)
	})
	p.pending = append(p.pending, procTimer{slot: tm.slot, gen: tm.gen})
	p.park()
	tm.Stop()
	v, ok := qw.val, qw.ok
	q.recycleWaiter(qw)
	return v, ok
}

package sim

import "time"

// Queue is an unbounded FIFO channel between procs. Put never blocks; Get
// parks the caller until an item is available. Items are delivered in
// arrival order and getters are served in arrival order.
//
// If a parked getter is Killed after an item has been assigned to it but
// before it resumes, that item is dropped — the same semantics as a message
// delivered to a dead process.
type Queue[T any] struct {
	env     *Env
	items   []T
	getters []*waiter
	closed  bool
}

// NewQueue returns an empty queue bound to env.
func NewQueue[T any](env *Env) *Queue[T] { return &Queue[T]{env: env} }

// Len returns the number of buffered items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put appends v and wakes the oldest parked getter, if any. Put on a closed
// queue panics, mirroring send-on-closed-channel.
func (q *Queue[T]) Put(v T) {
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	for len(q.getters) > 0 {
		w := q.getters[0]
		q.getters = q.getters[1:]
		if w.stale() {
			continue // entry from a timeout or a killed proc
		}
		w.woken = true
		w.val = v
		w.ok = true
		p := w.p
		q.env.schedule(q.env.now, func() { q.env.dispatch(p) })
		return
	}
	q.items = append(q.items, v)
}

// Close wakes every parked getter with ok=false. Buffered items remain
// retrievable via TryGet/Get until drained.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.getters {
		if w.stale() {
			continue
		}
		w.woken = true
		w.ok = false
		p := w.p
		q.env.schedule(q.env.now, func() { q.env.dispatch(p) })
	}
	q.getters = nil
}

// TryGet pops the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Get pops the oldest item, parking p until one arrives. The second result
// is false only when the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (T, bool) {
	p.checkRunning()
	if v, ok := q.TryGet(); ok {
		return v, true
	}
	var zero T
	if q.closed {
		return zero, false
	}
	w := &waiter{p: p}
	q.getters = append(q.getters, w)
	p.park()
	if !w.ok {
		return zero, false
	}
	return w.val.(T), true
}

// GetTimeout is Get with a deadline; the second result is false on timeout
// or close.
func (q *Queue[T]) GetTimeout(p *Proc, d time.Duration) (T, bool) {
	p.checkRunning()
	if v, ok := q.TryGet(); ok {
		return v, true
	}
	var zero T
	if q.closed {
		return zero, false
	}
	w := &waiter{p: p}
	q.getters = append(q.getters, w)
	tm := p.env.After(d, func() {
		if w.stale() {
			return
		}
		w.woken = true
		w.ok = false
		p.env.dispatch(p)
	})
	p.pending = append(p.pending, tm.it)
	p.park()
	tm.Stop()
	if !w.ok {
		return zero, false
	}
	return w.val.(T), true
}

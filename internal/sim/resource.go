package sim

import "fmt"

// Resource is a counting semaphore over an integer capacity, used to model
// finite pools (CPU slots, image-pull bandwidth, admission tickets).
// Waiters are served FIFO; a request is granted only when the full amount is
// available, so large requests are not starved by a stream of small ones —
// but they do block smaller requests behind them (strict FIFO, no bypass),
// which keeps grant order deterministic and fair.
type Resource struct {
	env      *Env
	capacity int64
	used     int64
	waiters  fifo[resWaiter]
}

type resWaiter struct {
	ref waiterRef
	n   int64
}

// NewResource returns a resource with the given capacity.
func NewResource(env *Env, capacity int64) *Resource {
	if capacity < 0 {
		panic("sim: negative Resource capacity")
	}
	return &Resource{env: env, capacity: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int64 { return r.capacity }

// InUse returns the currently acquired amount.
func (r *Resource) InUse() int64 { return r.used }

// Available returns capacity minus the acquired amount.
func (r *Resource) Available() int64 { return r.capacity - r.used }

// TryAcquire acquires n units if available without blocking. It reports
// whether the acquisition succeeded. Requests are still subject to FIFO
// fairness: TryAcquire fails while earlier waiters are parked.
func (r *Resource) TryAcquire(n int64) bool {
	if n < 0 {
		panic("sim: negative acquire")
	}
	if n > r.capacity {
		return false
	}
	if r.waiters.len() > 0 || r.used+n > r.capacity {
		return false
	}
	r.used += n
	return true
}

// Acquire parks p until n units are available and then acquires them.
// Acquiring more than the capacity panics (it could never succeed).
func (r *Resource) Acquire(p *Proc, n int64) {
	p.checkRunning()
	if n > r.capacity {
		panic(fmt.Sprintf("sim: Acquire(%d) exceeds capacity %d", n, r.capacity))
	}
	if r.TryAcquire(n) {
		return
	}
	w := r.env.newWaiter(p)
	r.waiters.push(resWaiter{ref: waiterRef{w: w, gen: w.gen}, n: n})
	p.park()
	// The grant (used += n) was performed by Release on our behalf.
	r.env.recycleWaiter(w)
}

// Release returns n units and grants as many parked waiters, in FIFO order,
// as now fit.
func (r *Resource) Release(n int64) {
	if n < 0 {
		panic("sim: negative release")
	}
	r.used -= n
	if r.used < 0 {
		panic("sim: Resource released below zero")
	}
	for r.waiters.len() > 0 {
		rw := r.waiters.peek()
		if rw.ref.stale() { // killed waiter: discard without granting
			r.waiters.pop()
			continue
		}
		if r.used+rw.n > r.capacity {
			return // strict FIFO: head doesn't fit, nobody behind it goes
		}
		granted := r.waiters.pop()
		r.used += granted.n
		w := granted.ref.w
		w.woken = true
		w.ok = true
		r.env.enqueue(r.env.now, w.p, nil)
	}
}

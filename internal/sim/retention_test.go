package sim

import (
	"testing"
	"time"
)

// TestDrainedQueueReleasesReferences is the regression test for the memory
// retention fix: a drained queue must not pin delivered values through stale
// copies left in its ring buffer. Pre-fix, items lingered in the backing
// array after TryGet (the `s = s[1:]` idiom never zeroed slots), keeping
// arbitrarily large object graphs alive for the queue's lifetime.
func TestDrainedQueueReleasesReferences(t *testing.T) {
	env := NewEnv()
	q := NewQueue[*int](env)
	// Push enough to force at least one grow cycle, then drain completely.
	for i := 0; i < 100; i++ {
		v := i
		q.Put(&v)
	}
	for i := 0; i < 100; i++ {
		if _, ok := q.TryGet(); !ok {
			t.Fatalf("TryGet %d: queue empty early", i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
	for i, v := range q.items.buf {
		if v != nil {
			t.Fatalf("drained queue retains item reference in slot %d", i)
		}
	}

	// Same for the interleaved Put/Get pattern that wraps the ring.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			v := i
			q.Put(&v)
		}
		for i := 0; i < 3; i++ {
			q.TryGet()
		}
	}
	for i, v := range q.items.buf {
		if v != nil {
			t.Fatalf("wrapped queue retains item reference in slot %d", i)
		}
	}
}

// TestGetTimeoutPendingBounded is the regression test for the timeout timer
// leak: a proc looping on GetTimeout must not accumulate wake handles in
// p.pending or dead timers in the event queue. Pre-fix, every timed-out Get
// left its timer slot live until the deadline and its handle in p.pending
// forever, so a poll loop grew both without bound.
func TestGetTimeoutPendingBounded(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var maxPending, maxQueue int
	env.Go("poller", func(p *Proc) {
		for i := 0; i < 200; i++ {
			if _, ok := q.GetTimeout(p, time.Millisecond); ok {
				t.Error("unexpected item")
			}
			if n := len(p.pending); n > maxPending {
				maxPending = n
			}
			if n := env.Pending(); n > maxQueue {
				maxQueue = n
			}
		}
	})
	env.Run()
	// pending is cleared on every resume; a handful of entries from the
	// current park is fine, monotonic growth is not.
	if maxPending > 4 {
		t.Fatalf("p.pending grew to %d entries across timeouts", maxPending)
	}
	// The event queue holds this park's timer plus a stopped timer's slot at
	// most; 200 iterations must not stack 200 dead timers.
	if maxQueue > 8 {
		t.Fatalf("event queue grew to %d pending events across timeouts", maxQueue)
	}
}

package sim

// fifo is a growable circular buffer used for every FIFO in the kernel: the
// same-instant event ring, queue items, queue getters and resource waiters.
// Unlike the `s = s[1:]` slice idiom it replaces, popping zeroes the vacated
// slot, so a drained fifo pins no delivered values, and the backing array is
// reused instead of crawling forward and re-allocating.
//
// The capacity is kept a power of two so position arithmetic is a mask, not
// a modulo.
type fifo[T any] struct {
	buf  []T
	head int
	n    int
}

// len returns the number of buffered elements.
func (f *fifo[T]) len() int { return f.n }

// push appends v at the tail, growing the buffer when full.
func (f *fifo[T]) push(v T) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = v
	f.n++
}

// pop removes and returns the head element, zeroing its slot so the fifo
// does not keep the value alive.
func (f *fifo[T]) pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return v
}

// popRaw removes and returns the head element without zeroing the slot. Only
// valid for pointer-free element types (the event entry ring), where a stale
// copy in the buffer cannot pin heap objects.
func (f *fifo[T]) popRaw() T {
	v := f.buf[f.head]
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return v
}

// peek returns a pointer to the head element without removing it. The fifo
// must be non-empty.
func (f *fifo[T]) peek() *T { return &f.buf[f.head] }

// at returns a pointer to the i-th element from the head (0 = head).
func (f *fifo[T]) at(i int) *T { return &f.buf[(f.head+i)&(len(f.buf)-1)] }

// compact drops elements for which keep returns false, preserving order.
// It cycles each element through pop/push once, so vacated slots are zeroed.
func (f *fifo[T]) compact(keep func(*T) bool) {
	for i, n := 0, f.n; i < n; i++ {
		v := f.pop()
		if keep(&v) {
			f.push(v)
		}
	}
}

func (f *fifo[T]) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]T, size)
	for i := 0; i < f.n; i++ {
		buf[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = buf
	f.head = 0
}

package sim

import (
	"errors"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	env := NewEnv()
	if env.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", env.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var at time.Duration
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		at = p.Env().Now()
	})
	env.Run()
	if at != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", at)
	}
	if env.Now() != 3*time.Second {
		t.Fatalf("final clock %v, want 3s", env.Now())
	}
}

func TestSequentialSleeps(t *testing.T) {
	env := NewEnv()
	var marks []time.Duration
	env.Go("p", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Sleep(time.Second)
			marks = append(marks, env.Now())
		}
	})
	env.Run()
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("mark[%d] = %v, want %v", i, marks[i], want[i])
		}
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	env := NewEnv()
	ran := false
	env.Go("p", func(p *Proc) {
		p.Sleep(-time.Second)
		ran = true
	})
	env.Run()
	if !ran || env.Now() != 0 {
		t.Fatalf("ran=%v now=%v, want true, 0", ran, env.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		env.After(time.Second, func() { order = append(order, i) })
	}
	env.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestAfterAndAt(t *testing.T) {
	env := NewEnv()
	var seq []string
	env.At(2*time.Second, func() { seq = append(seq, "at2") })
	env.After(time.Second, func() { seq = append(seq, "after1") })
	env.Run()
	if len(seq) != 2 || seq[0] != "after1" || seq[1] != "at2" {
		t.Fatalf("seq = %v", seq)
	}
}

func TestTimerStop(t *testing.T) {
	env := NewEnv()
	fired := false
	tm := env.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	env.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunUntil(t *testing.T) {
	env := NewEnv()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		env.At(d, func() { fired = append(fired, d) })
	}
	env.RunUntil(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if env.Now() != 3*time.Second {
		t.Fatalf("clock %v, want 3s", env.Now())
	}
	env.Run()
	if len(fired) != 5 {
		t.Fatalf("after full Run fired %d, want 5", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	env := NewEnv()
	env.RunUntil(10 * time.Second)
	if env.Now() != 10*time.Second {
		t.Fatalf("clock %v, want 10s", env.Now())
	}
}

func TestEventBroadcast(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	got := make([]any, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Go("w", func(p *Proc) { got[i] = p.Wait(ev) })
	}
	env.Go("trigger", func(p *Proc) {
		p.Sleep(time.Second)
		ev.Trigger("payload")
	})
	env.Run()
	for i, v := range got {
		if v != "payload" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
}

func TestWaitOnFiredEventReturnsImmediately(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	ev.Trigger(42)
	var got any
	var at time.Duration
	env.Go("w", func(p *Proc) { got = p.Wait(ev); at = env.Now() })
	env.Run()
	if got != 42 || at != 0 {
		t.Fatalf("got %v at %v, want 42 at 0", got, at)
	}
}

func TestDoubleTriggerKeepsFirstValue(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	ev.Trigger("first")
	ev.Trigger("second")
	if ev.Value() != "first" {
		t.Fatalf("Value() = %v, want first", ev.Value())
	}
}

func TestWaitTimeoutFires(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var ok bool
	var at time.Duration
	env.Go("w", func(p *Proc) {
		_, ok = p.WaitTimeout(ev, 2*time.Second)
		at = env.Now()
	})
	env.Run()
	if ok || at != 2*time.Second {
		t.Fatalf("ok=%v at=%v, want false at 2s", ok, at)
	}
}

func TestWaitTimeoutBeatenByTrigger(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var ok bool
	var val any
	env.Go("w", func(p *Proc) { val, ok = p.WaitTimeout(ev, 10*time.Second) })
	env.Go("t", func(p *Proc) { p.Sleep(time.Second); ev.Trigger("yes") })
	env.Run()
	if !ok || val != "yes" {
		t.Fatalf("ok=%v val=%v", ok, val)
	}
	if env.Now() != time.Second {
		// The stopped timeout must not keep the sim alive to 10s.
		t.Fatalf("clock %v, want 1s (timeout not cancelled)", env.Now())
	}
}

func TestWaitAny(t *testing.T) {
	env := NewEnv()
	a, b := NewEvent(env), NewEvent(env)
	var idx int
	var val any
	env.Go("w", func(p *Proc) { idx, val = p.WaitAny(a, b) })
	env.Go("t", func(p *Proc) { p.Sleep(time.Second); b.Trigger("b!") })
	env.Run()
	if idx != 1 || val != "b!" {
		t.Fatalf("idx=%d val=%v, want 1 b!", idx, val)
	}
}

func TestWaitAnyAlreadyFired(t *testing.T) {
	env := NewEnv()
	a, b := NewEvent(env), NewEvent(env)
	b.Trigger(7)
	var idx int
	env.Go("w", func(p *Proc) { idx, _ = p.WaitAny(a, b) })
	env.Run()
	if idx != 1 {
		t.Fatalf("idx = %d, want 1", idx)
	}
}

func TestWaitAnyEmptyPanics(t *testing.T) {
	env := NewEnv()
	var recovered bool
	env.Go("w", func(p *Proc) {
		defer func() { recovered = recover() != nil }()
		p.WaitAny()
	})
	env.Run()
	if !recovered {
		t.Fatal("WaitAny() with no events did not panic")
	}
}

func TestSnapshotAndPending(t *testing.T) {
	env := NewEnv()
	tm := env.After(time.Second, func() {})
	env.After(2*time.Second, func() {})
	if env.Pending() != 2 || len(env.Snapshot()) != 2 {
		t.Fatalf("pending=%d snapshot=%v", env.Pending(), env.Snapshot())
	}
	tm.Stop()
	if env.Pending() != 1 {
		t.Fatalf("pending after cancel = %d", env.Pending())
	}
	env.Run()
	if env.Pending() != 0 {
		t.Fatal("pending after run")
	}
}

func TestTracerReceivesProcEvents(t *testing.T) {
	env := NewEnv()
	var lines int
	env.SetTracer(func(at time.Duration, format string, args ...any) { lines++ })
	env.Go("a", func(p *Proc) {
		p.Tracef("hello")
	})
	env.Run()
	if lines < 2 { // Tracef + proc-finished
		t.Fatalf("tracer lines = %d", lines)
	}
}

func TestQueueFIFO(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var got []int
	env.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, ok := q.Get(p)
			if !ok {
				t.Errorf("Get returned !ok")
				return
			}
			got = append(got, v)
		}
	})
	env.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i)
		}
	})
	env.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestQueueBufferedBeforeGet(t *testing.T) {
	env := NewEnv()
	q := NewQueue[string](env)
	q.Put("a")
	q.Put("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	var got []string
	env.Go("c", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, _ := q.Get(p)
			got = append(got, v)
		}
	})
	env.Run()
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueMultipleGettersServedFIFO(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		env.Go("g", func(p *Proc) {
			v, _ := q.Get(p)
			order = append(order, i*100+v)
		})
	}
	env.Go("p", func(p *Proc) {
		p.Sleep(time.Second)
		q.Put(0)
		q.Put(1)
		q.Put(2)
	})
	env.Run()
	want := []int{0, 101, 202}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestQueueGetTimeout(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var ok bool
	env.Go("g", func(p *Proc) { _, ok = q.GetTimeout(p, time.Second) })
	env.Run()
	if ok {
		t.Fatal("expected timeout")
	}
	if env.Now() != time.Second {
		t.Fatalf("clock %v", env.Now())
	}
}

func TestQueueClose(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var ok bool
	var okDrain bool
	var drained int
	env.Go("g", func(p *Proc) { _, ok = q.Get(p) })
	env.Go("closer", func(p *Proc) {
		p.Sleep(time.Second)
		q.Put(9)
		q.Close()
	})
	env.Go("late", func(p *Proc) {
		p.Sleep(2 * time.Second)
		drained, okDrain = q.Get(p)
	})
	env.Run()
	if !ok {
		t.Fatal("first getter should have received the item put before Close")
	}
	if okDrain || drained != 0 {
		t.Fatalf("drain after close: got %d ok=%v, want !ok", drained, okDrain)
	}
}

func TestResourceAcquireRelease(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	var order []string
	hold := func(name string, d time.Duration) {
		env.Go(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(d)
			r.Release(1)
			order = append(order, name+"-")
		})
	}
	hold("a", 2*time.Second)
	hold("b", 2*time.Second)
	hold("c", time.Second) // must wait for a or b
	env.Run()
	if order[0] != "a+" || order[1] != "b+" {
		t.Fatalf("order = %v", order)
	}
	// c acquires only after a release at t=2s, finishing at 3s.
	if env.Now() != 3*time.Second {
		t.Fatalf("clock %v, want 3s", env.Now())
	}
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d, want 0", r.InUse())
	}
}

func TestResourceStrictFIFO(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 4)
	var order []string
	env.Go("big-first", func(p *Proc) {
		r.Acquire(p, 4)
		p.Sleep(time.Second)
		r.Release(4)
	})
	env.Go("big", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 3)
		order = append(order, "big")
		r.Release(3)
	})
	env.Go("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	env.Run()
	// Strict FIFO: even though 1 unit was free the whole time, "small" queued
	// behind "big" must not bypass it... note capacity 4 fully held until 1s.
	if order[0] != "big" || order[1] != "small" {
		t.Fatalf("order = %v, want [big small]", order)
	}
}

func TestTryAcquireRespectsQueue(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 2)
	env.Go("holder", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(time.Second)
		r.Release(2)
	})
	env.Go("waiter", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 1)
		r.Release(1)
	})
	env.Go("try", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		if r.TryAcquire(1) {
			t.Error("TryAcquire succeeded while earlier waiter parked")
		}
	})
	env.Run()
}

func TestKillUnwinds(t *testing.T) {
	env := NewEnv()
	var cleaned bool
	var reached bool
	p1 := env.Go("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
		reached = true
	})
	env.Go("killer", func(p *Proc) {
		p.Sleep(time.Second)
		p1.Kill(nil)
	})
	env.Run()
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if reached {
		t.Fatal("killed proc continued past Sleep")
	}
	if !p1.Finished() {
		t.Fatal("killed proc not finished")
	}
	if env.Now() != time.Second {
		t.Fatalf("clock %v, want 1s (kill should cancel the pending sleep wake)", env.Now())
	}
}

func TestKillReasonDelivered(t *testing.T) {
	env := NewEnv()
	boom := errors.New("boom")
	victim := env.Go("victim", func(p *Proc) { p.Sleep(time.Hour) })
	var got error
	env.Go("w", func(p *Proc) { got = p.WaitProc(victim) })
	env.Go("k", func(p *Proc) { p.Sleep(time.Second); victim.Kill(boom) })
	env.Run()
	if !errors.Is(got, boom) {
		t.Fatalf("got %v, want boom", got)
	}
}

func TestKillDefaultReason(t *testing.T) {
	env := NewEnv()
	victim := env.Go("victim", func(p *Proc) { p.Sleep(time.Hour) })
	var got error
	env.Go("w", func(p *Proc) { got = p.WaitProc(victim) })
	env.Go("k", func(p *Proc) { victim.Kill(nil) })
	env.Run()
	if !errors.Is(got, ErrKilled) {
		t.Fatalf("got %v, want ErrKilled", got)
	}
}

func TestKillFinishedProcIsNoop(t *testing.T) {
	env := NewEnv()
	p1 := env.Go("quick", func(p *Proc) {})
	env.Go("k", func(p *Proc) { p.Sleep(time.Second); p1.Kill(nil) })
	env.Run()
	if !p1.Finished() || p1.killErr != nil {
		t.Fatalf("finished=%v err=%v", p1.Finished(), p1.killErr)
	}
}

func TestKillWaiterOnQueue(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env)
	var got bool
	victim := env.Go("victim", func(p *Proc) { _, got = q.Get(p) })
	env.Go("k", func(p *Proc) { p.Sleep(time.Second); victim.Kill(nil) })
	env.Go("late-put", func(p *Proc) {
		p.Sleep(2 * time.Second)
		q.Put(5) // must not panic or wake the dead victim
	})
	env.Run()
	if got {
		t.Fatal("killed getter received a value")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (item must stay buffered, not vanish into the dead waiter)", q.Len())
	}
}

func TestWaitProcOnFinished(t *testing.T) {
	env := NewEnv()
	p1 := env.Go("a", func(p *Proc) {})
	var err error
	env.Go("b", func(p *Proc) {
		p.Sleep(time.Second)
		err = p.WaitProc(p1)
	})
	env.Run()
	if err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	env := NewEnv()
	var childRan bool
	env.Go("parent", func(p *Proc) {
		p.Sleep(time.Second)
		child := env.Go("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
		})
		if err := p.WaitProc(child); err != nil {
			t.Errorf("child err: %v", err)
		}
		if env.Now() != 2*time.Second {
			t.Errorf("parent resumed at %v, want 2s", env.Now())
		}
	})
	env.Run()
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestLiveCount(t *testing.T) {
	env := NewEnv()
	env.Go("a", func(p *Proc) { p.Sleep(time.Second) })
	env.Go("b", func(p *Proc) { p.Sleep(2 * time.Second) })
	if env.Live() != 2 {
		t.Fatalf("Live = %d, want 2", env.Live())
	}
	env.Run()
	if env.Live() != 0 {
		t.Fatalf("Live = %d, want 0", env.Live())
	}
}

func TestYield(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("a", func(p *Proc) {
		p.Yield()
		order = append(order, "a")
	})
	env.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	env.Run()
	// a yields, letting b (queued at the same instant) run first.
	if order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v", order)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		env := NewEnv()
		var log []string
		q := NewQueue[int](env)
		for i := 0; i < 5; i++ {
			i := i
			env.Go("prod", func(p *Proc) {
				p.Sleep(time.Duration(i%3) * time.Second)
				q.Put(i)
			})
			env.Go("cons", func(p *Proc) {
				v, _ := q.Get(p)
				log = append(log, string(rune('a'+v)))
			})
		}
		env.Run()
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run1=%v run2=%v diverged at %d", a, b, i)
		}
	}
}

func TestBlockingFromWrongContextPanics(t *testing.T) {
	env := NewEnv()
	var p1 *Proc
	p1 = env.Go("a", func(p *Proc) { p.Sleep(time.Second) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p1.Sleep(time.Second) // blocking call from the test goroutine: must panic
}

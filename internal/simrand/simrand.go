// Package simrand provides seeded random distributions for workload
// generation. Every stream is explicitly seeded so experiments are
// reproducible, and independent components derive independent substreams
// with Fork so adding a consumer never perturbs the draws seen by another.
package simrand

import (
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// Source is a deterministic random stream.
type Source struct {
	rng  *rand.Rand
	seed int64
}

// New returns a stream seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the stream was created with.
func (s *Source) Seed() int64 { return s.seed }

// Fork derives an independent substream identified by name. Forking is a
// pure function of (parent seed, name), so substreams are stable across runs
// regardless of draw order on the parent.
func (s *Source) Fork(name string) *Source {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(s.seed ^ int64(h.Sum64()))
}

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Uniform returns a uniform draw in [lo,hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.rng.Float64() < p }

// Exp returns an exponential draw with the given mean (the inter-arrival
// distribution of a Poisson process with rate 1/mean).
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// ExpDuration returns an exponential duration with the given mean.
func (s *Source) ExpDuration(mean time.Duration) time.Duration {
	return time.Duration(s.Exp(float64(mean)))
}

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return s.rng.NormFloat64()*stddev + mean
}

// TruncNormal returns a normal draw clamped to [lo,hi] by resampling (with a
// clamping fallback after 64 rejections, which only matters for extreme
// parameterizations).
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		panic("simrand: TruncNormal lo > hi")
	}
	for i := 0; i < 64; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// LogNormal returns exp(N(mu, sigma)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 30.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Choice returns a uniformly chosen index into weights scaled by weight;
// all-zero weights fall back to uniform choice.
func (s *Source) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("simrand: negative weight")
		}
		total += w
	}
	if total == 0 {
		return s.rng.Intn(len(weights))
	}
	x := s.rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

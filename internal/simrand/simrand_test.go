package simrand

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminismSameSeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestForkStableAcrossParentDraws(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 10; i++ {
		a.Float64() // perturb parent a only
	}
	fa, fb := a.Fork("x"), b.Fork("x")
	for i := 0; i < 50; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("fork depends on parent draw position")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	s := New(7)
	x, y := s.Fork("x"), s.Fork("y")
	same := 0
	for i := 0; i < 100; i++ {
		if x.Float64() == y.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("forks x and y matched on %d/100 draws", same)
	}
}

func TestExpMean(t *testing.T) {
	s := New(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("Exp(3) sample mean %.3f", mean)
	}
}

func TestExpDuration(t *testing.T) {
	s := New(1)
	const n = 100000
	var sum time.Duration
	for i := 0; i < n; i++ {
		d := s.ExpDuration(time.Second)
		if d < 0 {
			t.Fatal("negative duration")
		}
		sum += d
	}
	mean := sum / n
	if mean < 950*time.Millisecond || mean > 1050*time.Millisecond {
		t.Fatalf("mean %v", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(2)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 || math.Abs(variance-4) > 0.15 {
		t.Fatalf("mean=%.3f var=%.3f", mean, variance)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.TruncNormal(0.3, 2.0, 0.05, 1.0)
			if v < 0.05 || v > 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	s := New(3)
	// Interval far from the mean: resampling gives up and clamps.
	v := s.TruncNormal(0, 0.001, 5, 6)
	if v < 5 || v > 6 {
		t.Fatalf("v = %f outside [5,6]", v)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 25, 100} {
		s := New(11)
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.03 {
			t.Fatalf("Poisson(%v) sample mean %.3f", mean, got)
		}
	}
}

func TestPoissonZeroAndNegative(t *testing.T) {
	s := New(1)
	if s.Poisson(0) != 0 || s.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestChoiceWeights(t *testing.T) {
	s := New(5)
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Choice([]float64{1, 2, 1})]++
	}
	if math.Abs(float64(counts[1])/n-0.5) > 0.02 {
		t.Fatalf("weight-2 choice frequency %.3f", float64(counts[1])/n)
	}
}

func TestChoiceAllZeroUniform(t *testing.T) {
	s := New(5)
	counts := [4]int{}
	for i := 0; i < 40000; i++ {
		counts[s.Choice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/40000-0.25) > 0.02 {
			t.Fatalf("index %d frequency %.3f", i, float64(c)/40000)
		}
	}
}

func TestUniformRange(t *testing.T) {
	f := func(seed int64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Uniform(2, 5)
			if v < 2 || v >= 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	p := s.Perm(10)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

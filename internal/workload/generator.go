package workload

import (
	"fmt"
	"math"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/simrand"
)

// Job is one generated cluster job: an inference server with a GPU demand
// (busy fraction) arriving at a point in time.
type Job struct {
	Name    string
	Arrival time.Duration
	// Demand is the job's GPU usage fraction in (0,1] — the knob the
	// paper's workloads vary (Figure 8).
	Demand float64
	// Duration is how long the job serves requests.
	Duration time.Duration
	// Labels: optional locality constraints for the sharePod form.
	Affinity     string
	AntiAffinity string
	Exclusion    string
	// Mode is the sharing strategy the job's sharePod requests ("" = node
	// default; "token", "mps", "replica").
	Mode string
	// MemShare overrides the sharePod's gpu_mem fraction (0 = the
	// MemShareInference default).
	MemShare float64
	// MemBytes switches the sharePod to the absolute memory-request form
	// (gpu_mem_bytes); when set, gpu_mem is left 0.
	MemBytes int64
	// ReqKernelMS overrides the per-request kernel time (0 =
	// DefaultReqKernelMS) — the knob that separates small-kernel from
	// large-kernel mixes in the strategy comparison.
	ReqKernelMS int
	// Seed for the job's internal arrival process.
	Seed int64
}

// GeneratorConfig describes a random workload in the paper's terms.
type GeneratorConfig struct {
	// Jobs is the total number of jobs (fixed per workload, §5.1).
	Jobs int
	// MeanInterArrival is the mean of the Poisson arrival process.
	MeanInterArrival time.Duration
	// DemandMean and DemandVar parameterize the normal GPU-demand
	// distribution. Var is in the paper's axis units (Fig 8c, 0.5–4);
	// the demand stddev is sqrt(Var) × 5 percentage points.
	DemandMean float64
	DemandVar  float64
	// JobDuration is each job's serving time.
	JobDuration time.Duration
	// Mode, MemShare, MemBytes and ReqKernelMS stamp every generated job
	// (see the Job fields) — mode-annotated generators for the strategy
	// mixes.
	Mode        string
	MemShare    float64
	MemBytes    int64
	ReqKernelMS int
	// Seed makes the workload reproducible.
	Seed int64
}

// VarUnit converts the paper's variance axis into a demand stddev.
const VarUnit = 0.05

// Generate produces the job list for a config.
func Generate(cfg GeneratorConfig) []Job {
	rng := simrand.New(cfg.Seed)
	arrivals := rng.Fork("arrivals")
	demands := rng.Fork("demands")
	seeds := rng.Fork("seeds")
	sigma := 0.0
	if cfg.DemandVar > 0 {
		sigma = VarUnit * math.Sqrt(cfg.DemandVar)
	}
	var jobs []Job
	var clock time.Duration
	for i := 0; i < cfg.Jobs; i++ {
		clock += arrivals.ExpDuration(cfg.MeanInterArrival)
		demand := cfg.DemandMean
		if sigma > 0 {
			demand = demands.TruncNormal(cfg.DemandMean, sigma, 0.05, 0.95)
		}
		jobs = append(jobs, Job{
			Name:        fmt.Sprintf("job-%03d", i),
			Arrival:     clock,
			Demand:      demand,
			Duration:    cfg.JobDuration,
			Mode:        cfg.Mode,
			MemShare:    cfg.MemShare,
			MemBytes:    cfg.MemBytes,
			ReqKernelMS: cfg.ReqKernelMS,
			Seed:        int64(seeds.Intn(1 << 30)),
		})
	}
	return jobs
}

// serveEnv builds the container environment realizing a job's demand: the
// request rate is demand divided by the per-request kernel time, so the
// busy fraction stays the demand whatever the kernel granularity.
func serveEnv(j Job) map[string]string {
	kernelMS := j.ReqKernelMS
	if kernelMS <= 0 {
		kernelMS = DefaultReqKernelMS
	}
	kernelSec := float64(kernelMS) / 1000
	rate := j.Demand / kernelSec
	return map[string]string{
		EnvRate:      fmt.Sprintf("%.4f", rate),
		EnvReqKernel: fmt.Sprintf("%d", kernelMS),
		EnvDuration:  fmt.Sprintf("%.3f", j.Duration.Seconds()),
		EnvModelMB:   "512",
		EnvSeed:      fmt.Sprintf("%d", j.Seed),
	}
}

// SharePodFor renders the job as a KubeShare sharePod: gpu_request equals
// the demand (with a little headroom in gpu_limit) and gpu_mem covers the
// model plus working space.
func SharePodFor(j Job) *core.SharePod {
	limit := j.Demand * 1.2
	if limit > 1 {
		limit = 1
	}
	mem := j.MemShare
	if mem == 0 && j.MemBytes == 0 {
		mem = MemShareInference
	}
	return &core.SharePod{
		ObjectMeta: api.ObjectMeta{Name: j.Name},
		Spec: core.SharePodSpec{
			GPURequest:   j.Demand,
			GPULimit:     limit,
			GPUMem:       mem,
			GPUMemBytes:  j.MemBytes,
			SharingMode:  j.Mode,
			Affinity:     j.Affinity,
			AntiAffinity: j.AntiAffinity,
			Exclusion:    j.Exclusion,
			Pod: api.PodSpec{Containers: []api.Container{{
				Name:  "serve",
				Image: ServeImage,
				Env:   serveEnv(j),
			}}},
		},
	}
}

// NativePodFor renders the job as a vanilla Kubernetes pod occupying one
// whole GPU — the no-sharing baseline.
func NativePodFor(j Job) *api.Pod {
	return &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: j.Name},
		Spec: api.PodSpec{Containers: []api.Container{{
			Name:     "serve",
			Image:    ServeImage,
			Env:      serveEnv(j),
			Requests: api.ResourceList{api.ResourceGPU: 1},
		}}},
	}
}

package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Trace I/O: workloads serialize to a small CSV format so experiments can
// be recorded, shared and replayed byte-identically — the harness
// equivalent of the paper's "average of 5 experimental runs" being
// re-runnable.

// traceHeader is the CSV schema.
var traceHeader = []string{"name", "arrival_ms", "demand", "duration_ms", "affinity", "anti_affinity", "exclusion", "seed"}

// WriteTrace serializes jobs as CSV.
func WriteTrace(w io.Writer, jobs []Job) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return err
	}
	for _, j := range jobs {
		rec := []string{
			j.Name,
			strconv.FormatInt(j.Arrival.Milliseconds(), 10),
			strconv.FormatFloat(j.Demand, 'f', -1, 64),
			strconv.FormatInt(j.Duration.Milliseconds(), 10),
			j.Affinity,
			j.AntiAffinity,
			j.Exclusion,
			strconv.FormatInt(j.Seed, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace produced by WriteTrace.
func ReadTrace(r io.Reader) ([]Job, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if len(header) != len(traceHeader) {
		return nil, fmt.Errorf("workload: trace has %d columns, want %d", len(header), len(traceHeader))
	}
	var jobs []Job
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		arrival, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d arrival: %w", line, err)
		}
		demand, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d demand: %w", line, err)
		}
		if demand <= 0 || demand > 1 {
			return nil, fmt.Errorf("workload: trace line %d demand %v outside (0,1]", line, demand)
		}
		duration, err := strconv.ParseInt(rec[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d duration: %w", line, err)
		}
		seed, err := strconv.ParseInt(rec[7], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d seed: %w", line, err)
		}
		jobs = append(jobs, Job{
			Name:         rec[0],
			Arrival:      time.Duration(arrival) * time.Millisecond,
			Demand:       demand,
			Duration:     time.Duration(duration) * time.Millisecond,
			Affinity:     rec[4],
			AntiAffinity: rec[5],
			Exclusion:    rec[6],
			Seed:         seed,
		})
	}
	return jobs, nil
}

package workload

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	jobs := Generate(GeneratorConfig{
		Jobs: 25, MeanInterArrival: 3 * time.Second,
		DemandMean: 0.3, DemandVar: 2, JobDuration: 40 * time.Second, Seed: 5,
	})
	jobs[3].Affinity = "grp"
	jobs[4].AntiAffinity = "spread"
	jobs[5].Exclusion = "tenant,with,commas"
	var b strings.Builder
	if err := WriteTrace(&b, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range jobs {
		want := jobs[i]
		// Arrival is stored at millisecond resolution.
		want.Arrival = want.Arrival.Truncate(time.Millisecond)
		want.Duration = want.Duration.Truncate(time.Millisecond)
		if got[i] != want {
			t.Fatalf("job %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestTraceEmptyWorkload(t *testing.T) {
	var b strings.Builder
	if err := WriteTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v err %v", got, err)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not,a,trace\n",
		"name,arrival_ms,demand,duration_ms,affinity,anti_affinity,exclusion,seed\nj,abc,0.5,100,,,,1\n",
		"name,arrival_ms,demand,duration_ms,affinity,anti_affinity,exclusion,seed\nj,100,1.5,100,,,,1\n",
		"name,arrival_ms,demand,duration_ms,affinity,anti_affinity,exclusion,seed\nj,100,0.5,xyz,,,,1\n",
	}
	for i, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

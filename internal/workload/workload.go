// Package workload models the paper's deep-learning jobs (Table 3): a
// TensorFlow ResNet-50 training job whose length is controlled by its step
// count, and a TF-Serving inference server whose GPU usage is proportional
// to its client request rate (Figure 5). Both are registered as container
// images and parameterized through environment variables, exactly how the
// experiment harness launches them.
package workload

import (
	"fmt"
	"strconv"
	"time"

	"kubeshare/internal/kube"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/simrand"
)

// Image names registered by RegisterImages.
const (
	// TrainImage is the ResNet-50-style training job.
	TrainImage = "workload/resnet50-train"
	// ServeImage is the TF-Serving-style inference server.
	ServeImage = "workload/tf-serving"
)

// Environment variables understood by the images.
const (
	// Training: number of steps, per-step kernel time (ms), per-step host
	// time (ms), images per step.
	EnvSteps        = "TRAIN_STEPS"
	EnvStepKernelMS = "TRAIN_STEP_KERNEL_MS"
	EnvStepHostMS   = "TRAIN_STEP_HOST_MS"
	EnvBatch        = "TRAIN_BATCH"
	// Serving: client request rate (req/s), per-request kernel time (ms),
	// serving duration (s) after which arrivals stop, model size (bytes),
	// RNG seed for the arrival process.
	EnvRate      = "SERVE_RATE"
	EnvReqKernel = "SERVE_REQ_KERNEL_MS"
	EnvDuration  = "SERVE_DURATION_S"
	EnvModelMB   = "SERVE_MODEL_MB"
	EnvSeed      = "SERVE_SEED"
)

// Training defaults: a 10ms step kernel at near-full duty approximates a
// V100 ResNet-50 step at small batch.
const (
	DefaultStepKernelMS = 10
	DefaultBatch        = 32
	// DefaultReqKernelMS is the inference forward-pass time (DeepLab V3 on
	// a V100 is tens of ms).
	DefaultReqKernelMS = 25
)

// Named gpu_mem profiles — the memory shares the experiment mixes request,
// deduplicated from the per-figure literals so a profile change propagates
// everywhere (and the fig18 strategy mixes reuse them by name).
const (
	// MemShareInference fits a serving model plus working space (the
	// generator's default, Table 1's sweep).
	MemShareInference = 0.1
	// MemShareSmall is a modest working set (Fig 10/11/12 tenants).
	MemShareSmall = 0.2
	// MemShareTraining covers a training job's model plus activations
	// (Fig 6's train+serve pair).
	MemShareTraining = 0.3
	// MemShareChurn is the churn-soak tenant size (Fig 16) — two fit, a
	// third does not, keeping reuse pressure on the pool.
	MemShareChurn = 0.45
	// MemShareHalf splits a device between two tenants (Fig 7/15).
	MemShareHalf = 0.5
)

func envFloat(env map[string]string, key string, def float64) float64 {
	if v, ok := env[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

func envInt(env map[string]string, key string, def int) int {
	if v, ok := env[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// RegisterImages registers both workload images on a cluster.
func RegisterImages(c *kube.Cluster) {
	c.Images.Register(TrainImage, trainMain)
	c.Images.Register(ServeImage, serveMain)
}

// trainMain is the training entrypoint: allocate model + activations, then
// run steps of (host prep, kernel).
func trainMain(ctx *runtime.Ctx) error {
	if ctx.CUDA == nil {
		return fmt.Errorf("train: no GPU visible")
	}
	steps := envInt(ctx.Env, EnvSteps, 100)
	kernel := time.Duration(envFloat(ctx.Env, EnvStepKernelMS, DefaultStepKernelMS) * float64(time.Millisecond))
	host := time.Duration(envFloat(ctx.Env, EnvStepHostMS, 0) * float64(time.Millisecond))
	// Model weights + working set: 2 GiB, the ResNet-50 regime.
	if _, err := ctx.CUDA.MemAlloc(ctx.Proc, 2<<30); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	if err := ctx.CUDA.MemcpyHtoD(ctx.Proc, 100<<20); err != nil { // weights upload
		return err
	}
	for i := 0; i < steps; i++ {
		if host > 0 {
			ctx.Proc.Sleep(host)
		}
		if err := ctx.CUDA.LaunchKernel(ctx.Proc, kernel); err != nil {
			return err
		}
	}
	return nil
}

// serveMain is the inference entrypoint: load the model, then serve a
// Poisson stream of client requests for the configured duration, draining
// the backlog before exiting. Its GPU usage is the request rate times the
// per-request kernel time.
func serveMain(ctx *runtime.Ctx) error {
	if ctx.CUDA == nil {
		return fmt.Errorf("serve: no GPU visible")
	}
	rate := envFloat(ctx.Env, EnvRate, 10)
	kernel := time.Duration(envFloat(ctx.Env, EnvReqKernel, DefaultReqKernelMS) * float64(time.Millisecond))
	duration := time.Duration(envFloat(ctx.Env, EnvDuration, 60) * float64(time.Second))
	modelBytes := int64(envFloat(ctx.Env, EnvModelMB, 512)) << 20
	seed := int64(envInt(ctx.Env, EnvSeed, 1))
	if _, err := ctx.CUDA.MemAlloc(ctx.Proc, modelBytes); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := ctx.CUDA.MemcpyHtoD(ctx.Proc, modelBytes); err != nil {
		return err
	}
	rng := simrand.New(seed)
	p := ctx.Proc
	deadline := p.Env().Now() + duration
	if rate <= 0 {
		p.Sleep(duration)
		return nil
	}
	meanGap := time.Duration(float64(time.Second) / rate)
	// next is the virtual arrival time of the next request; the server
	// sleeps until then (idle) or is already behind (backlog) and serves
	// immediately.
	next := p.Env().Now() + rng.ExpDuration(meanGap)
	for next < deadline {
		if wait := next - p.Env().Now(); wait > 0 {
			p.Sleep(wait)
		}
		if err := ctx.CUDA.LaunchKernel(p, kernel); err != nil {
			return err
		}
		next += rng.ExpDuration(meanGap)
	}
	return nil
}

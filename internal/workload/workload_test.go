package workload

import (
	"math"
	"strconv"
	"testing"
	"time"

	"kubeshare/internal/gpusim"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/sim"
)

func newWorkloadCluster(t *testing.T, nodes int) (*sim.Env, *kube.Cluster) {
	t.Helper()
	env := sim.NewEnv()
	c, err := kube.NewCluster(env, kube.DefaultConfig(nodes))
	if err != nil {
		t.Fatal(err)
	}
	RegisterImages(c)
	return env, c
}

func TestTrainingJobRunsToCompletion(t *testing.T) {
	env, c := newWorkloadCluster(t, 1)
	pod := &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: "train"},
		Spec: api.PodSpec{Containers: []api.Container{{
			Name: "c", Image: TrainImage,
			Env:      map[string]string{EnvSteps: "50"},
			Requests: api.ResourceList{api.ResourceGPU: 1},
		}}},
	}
	env.Go("t", func(p *sim.Proc) { c.Pods().Create(pod) })
	env.Run()
	got, _ := c.Pods().Get("train")
	if got.Status.Phase != api.PodSucceeded {
		t.Fatalf("phase %s (%s)", got.Status.Phase, got.Status.Message)
	}
	// 50 steps × 10ms = 500ms of device time.
	dev := c.Nodes[0].GPUs
	var busy time.Duration
	for _, d := range dev {
		busy += d.BusyTime()
	}
	if busy < 500*time.Millisecond || busy > 600*time.Millisecond {
		t.Fatalf("device busy %v, want ≈500ms", busy)
	}
}

func TestTrainingJobWithoutGPUFails(t *testing.T) {
	env, c := newWorkloadCluster(t, 1)
	pod := &api.Pod{
		ObjectMeta: api.ObjectMeta{Name: "nogpu"},
		Spec: api.PodSpec{Containers: []api.Container{{
			Name: "c", Image: TrainImage,
		}}},
	}
	env.Go("t", func(p *sim.Proc) { c.Pods().Create(pod) })
	env.Run()
	got, _ := c.Pods().Get("nogpu")
	if got.Status.Phase != api.PodFailed {
		t.Fatalf("phase %s, want Failed", got.Status.Phase)
	}
}

// TestInferenceUsageProportionalToRate is the Figure 5 relationship: GPU
// usage tracks the client request rate linearly until saturation.
func TestInferenceUsageProportionalToRate(t *testing.T) {
	utilAt := func(rate float64) float64 {
		env, c := newWorkloadCluster(t, 1)
		pod := &api.Pod{
			ObjectMeta: api.ObjectMeta{Name: "serve"},
			Spec: api.PodSpec{Containers: []api.Container{{
				Name: "c", Image: ServeImage,
				Env: map[string]string{
					EnvRate:     formatF(rate),
					EnvDuration: "60",
					EnvSeed:     "7",
				},
				Requests: api.ResourceList{api.ResourceGPU: 1},
			}}},
		}
		env.Go("t", func(p *sim.Proc) { c.Pods().Create(pod) })
		env.Run()
		var dev *gpusim.Device
		for _, d := range c.Nodes[0].GPUs {
			if d.BusyTime() > 0 {
				dev = d
			}
		}
		if dev == nil {
			t.Fatal("no device used")
		}
		return dev.BusyTime().Seconds() / 60.0
	}
	// 25ms kernels: rate r → expected utilization r×0.025.
	lo, mid, hi := utilAt(4), utilAt(12), utilAt(24)
	for _, tc := range []struct{ got, want float64 }{
		{lo, 0.1}, {mid, 0.3}, {hi, 0.6},
	} {
		if math.Abs(tc.got-tc.want) > 0.05 {
			t.Fatalf("utilization %.3f, want ≈%.2f (Fig 5 proportionality)", tc.got, tc.want)
		}
	}
	if !(lo < mid && mid < hi) {
		t.Fatal("utilization not increasing with request rate")
	}
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

func TestGeneratorDeterministic(t *testing.T) {
	cfg := GeneratorConfig{
		Jobs: 50, MeanInterArrival: 5 * time.Second,
		DemandMean: 0.3, DemandVar: 2, JobDuration: 40 * time.Second, Seed: 42,
	}
	a, b := Generate(cfg), Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between identical configs", i)
		}
	}
}

func TestGeneratorStatistics(t *testing.T) {
	cfg := GeneratorConfig{
		Jobs: 2000, MeanInterArrival: 5 * time.Second,
		DemandMean: 0.3, DemandVar: 2, JobDuration: 40 * time.Second, Seed: 1,
	}
	jobs := Generate(cfg)
	var sumGap, prev time.Duration
	sumDemand := 0.0
	for _, j := range jobs {
		if j.Arrival < prev {
			t.Fatal("arrivals not monotonic")
		}
		sumGap += j.Arrival - prev
		prev = j.Arrival
		if j.Demand < 0.05 || j.Demand > 0.95 {
			t.Fatalf("demand %v out of bounds", j.Demand)
		}
		sumDemand += j.Demand
	}
	meanGap := sumGap / time.Duration(len(jobs))
	if meanGap < 4500*time.Millisecond || meanGap > 5500*time.Millisecond {
		t.Fatalf("mean inter-arrival %v, want ≈5s", meanGap)
	}
	if got := sumDemand / float64(len(jobs)); math.Abs(got-0.3) > 0.02 {
		t.Fatalf("mean demand %.3f, want ≈0.3", got)
	}
}

func TestGeneratorZeroVarianceIsConstantDemand(t *testing.T) {
	jobs := Generate(GeneratorConfig{
		Jobs: 10, MeanInterArrival: time.Second,
		DemandMean: 0.4, DemandVar: 0, JobDuration: time.Second, Seed: 3,
	})
	for _, j := range jobs {
		if j.Demand != 0.4 {
			t.Fatalf("demand %v, want exactly 0.4", j.Demand)
		}
	}
}

func TestSpecBuilders(t *testing.T) {
	j := Job{Name: "j", Demand: 0.5, Duration: 30 * time.Second, AntiAffinity: "x", Seed: 9}
	sp := SharePodFor(j)
	if sp.Spec.GPURequest != 0.5 || sp.Spec.GPULimit != 0.6 || sp.Spec.AntiAffinity != "x" {
		t.Fatalf("sharePod spec = %+v", sp.Spec)
	}
	if sp.Spec.Pod.Containers[0].Env[EnvRate] == "" {
		t.Fatal("rate env missing")
	}
	pod := NativePodFor(j)
	if pod.Spec.Containers[0].Requests[api.ResourceGPU] != 1 {
		t.Fatal("native pod must request a whole GPU")
	}
	high := SharePodFor(Job{Name: "h", Demand: 0.95, Duration: time.Second})
	if high.Spec.GPULimit != 1 {
		t.Fatalf("limit %v, want clamped to 1", high.Spec.GPULimit)
	}
}

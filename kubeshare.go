// Package kubeshare is the public entry point of the KubeShare
// reproduction: a simulated Kubernetes cluster with GPUs managed as
// first-class, shared resources (Yeh, Chen, Chou — HPDC 2020).
//
// A Sim bundles a deterministic discrete-event environment, a miniature
// Kubernetes cluster with simulated GPUs, and an installed KubeShare
// (SharePod/VGPU custom resources, KubeShare-Sched, KubeShare-DevMgr, and
// the per-node vGPU device library). Virtual time only advances inside Run
// and RunFor, so hours of cluster time execute in milliseconds,
// reproducibly.
//
//	s, _ := kubeshare.New(kubeshare.WithNodes(2))
//	s.Go("submit", func(p *sim.Proc) {
//	    s.CreateSharePod(&kubeshare.SharePod{ ... })
//	})
//	s.Run()
package kubeshare

import (
	"fmt"
	"time"

	"kubeshare/internal/core"
	"kubeshare/internal/core/schedfw"
	"kubeshare/internal/devlib"
	"kubeshare/internal/kube"
	"kubeshare/internal/kube/api"
	"kubeshare/internal/kube/apiserver"
	"kubeshare/internal/kube/labels"
	"kubeshare/internal/kube/runtime"
	"kubeshare/internal/kube/store"
	"kubeshare/internal/obs"
	"kubeshare/internal/sim"
	"kubeshare/internal/workload"
)

// Re-exported object types: the public API speaks the same objects the
// controllers do.
type (
	// SharePod is the custom resource requesting a fractional, explicitly
	// bound GPU share.
	SharePod = core.SharePod
	// SharePodSpec is its specification (gpu_request / gpu_limit / gpu_mem,
	// GPUID, locality labels).
	SharePodSpec = core.SharePodSpec
	// VGPU is the pool-device custom resource.
	VGPU = core.VGPU
	// SharePodSet is the replica controller over sharePods.
	SharePodSet = core.SharePodSet
	// Pod and PodSpec are the native Kubernetes objects.
	Pod = api.Pod
	// PodSpec is a pod's desired state.
	PodSpec = api.PodSpec
	// Container is one container in a pod spec.
	Container = api.Container
	// ObjectMeta is common object metadata.
	ObjectMeta = api.ObjectMeta
	// ResourceList maps resource names to quantities.
	ResourceList = api.ResourceList
	// Share is the device library's view of a fractional GPU allocation.
	Share = devlib.Share
	// Proc is a simulation process handle (the argument of Go callbacks).
	Proc = sim.Proc
	// Event is one watch notification delivered by Sim.Watch.
	Event = store.Event
	// WatchOptions narrows a Sim.Watch subscription: exact name, label
	// selector, and replay of the current state.
	WatchOptions = apiserver.WatchOptions
	// Selector filters objects by labels (see SelectorFromMap / HasLabel).
	Selector = labels.Selector
	// Span is one operation in the causal trace (see Sim.Trace).
	Span = obs.Span
	// EventRecord is one recorded cluster event (see Sim.Events).
	EventRecord = obs.EventRecord
	// MetricsSnapshot is a point-in-time registry dump (see Sim.Metrics).
	MetricsSnapshot = obs.MetricsSnapshot
	// SchedStats is the one-call scheduling/recovery counter snapshot,
	// read from the telemetry registry (see Sim.SchedStats).
	SchedStats = core.SchedStats
	// Placement is a typed placement: node, vGPU and whether the share is
	// fractional (see SharePod.Placement).
	Placement = core.Placement
)

// Trace helpers re-exported from the telemetry runtime.
var (
	// TraceChain filters spans down to one chain (e.g. "SharePod/hello").
	TraceChain = obs.Chain
	// FormatSpans and FormatEvents render deterministic text dumps.
	FormatSpans  = obs.FormatSpans
	FormatEvents = obs.FormatEvents
)

// Selector constructors for Sim.Watch / ListSelector filters.
var (
	// SelectorFromMap builds an equality selector from key=value pairs.
	SelectorFromMap = labels.SelectorFromMap
	// HasLabel builds a selector matching objects carrying the label key.
	HasLabel = labels.HasKey
)

// Re-exported phases and policies.
const (
	SharePodPending   = core.SharePodPending
	SharePodScheduled = core.SharePodScheduled
	SharePodRunning   = core.SharePodRunning
	SharePodSucceeded = core.SharePodSucceeded
	SharePodFailed    = core.SharePodFailed
	SharePodRejected  = core.SharePodRejected

	// OnDemand and Reservation are the idle-vGPU pool policies (§4.4).
	OnDemand    = core.OnDemand
	Reservation = core.Reservation

	// ResourceGPU is the extended resource name of whole GPUs.
	ResourceGPU = api.ResourceGPU

	// KindSharePod and KindVGPU name the custom resource kinds for
	// Sim.Watch subscriptions.
	KindSharePod = core.KindSharePod
	KindVGPU     = core.KindVGPU

	// EventAdded, EventModified and EventDeleted classify watch events.
	EventAdded    = store.Added
	EventModified = store.Modified
	EventDeleted  = store.Deleted
)

// config collects the options.
type config struct {
	nodes       int
	gpusPerNode int
	gpuMem      int64
	ks          core.Config
	sched       []schedfw.Option
	extender    bool
	noKubeShare bool
	noObs       bool
}

// Option configures New.
type Option func(*config)

// WithNodes sets the worker node count (default 1).
func WithNodes(n int) Option { return func(c *config) { c.nodes = n } }

// WithGPUsPerNode sets the GPUs per node (default 4, the paper's
// p3.8xlarge).
func WithGPUsPerNode(n int) Option { return func(c *config) { c.gpusPerNode = n } }

// WithGPUMemory sets per-GPU memory in bytes (default 16 GiB).
func WithGPUMemory(bytes int64) Option { return func(c *config) { c.gpuMem = bytes } }

// WithPoolPolicy selects the idle-vGPU policy (default OnDemand).
func WithPoolPolicy(p core.PoolPolicy) Option {
	return func(c *config) { c.ks.DevMgr.Policy = p }
}

// WithTokenQuota sets the device library token quota (default 100ms).
func WithTokenQuota(d time.Duration) Option {
	return func(c *config) { c.ks.Devlib.Quota = d }
}

// WithMemOvercommit enables GPUswap-style memory over-commitment: the
// scheduler may place containers whose gpu_mem shares sum to factor (>1)
// on a device, and the device library swaps working sets host↔device at
// token handoff.
func WithMemOvercommit(factor float64) Option {
	return func(c *config) {
		c.ks.Scheduler.MemOvercommitFactor = factor
		c.ks.Devlib.MemOvercommit = true
	}
}

// WithExtenderScheduler installs the scheduler-extender baseline instead of
// KubeShare-Sched (for comparisons).
func WithExtenderScheduler() Option { return func(c *config) { c.extender = true } }

// WithSchedulerBatch sets how many placements one scheduling cycle may
// stage (default 1 — the legacy pace). Larger batches amortize the cycle
// latency and pool materialization across many decisions.
func WithSchedulerBatch(n int) Option {
	return func(c *config) { c.sched = append(c.sched, schedfw.WithBatchSize(n)) }
}

// WithGangTimeout bounds how long an incomplete gang (SharePodSet with Gang
// enabled) may hold reserved capacity against younger work.
func WithGangTimeout(d time.Duration) Option {
	return func(c *config) { c.sched = append(c.sched, schedfw.WithGangTimeout(d)) }
}

// WithSchedulerOptions passes framework driver options through verbatim
// (plugin sets, batch sizes — see the schedfw package).
func WithSchedulerOptions(opts ...schedfw.Option) Option {
	return func(c *config) { c.sched = append(c.sched, opts...) }
}

// WithoutKubeShare builds a vanilla cluster with no KubeShare installed
// (the native baseline).
func WithoutKubeShare() Option { return func(c *config) { c.noKubeShare = true } }

// WithoutObservability disables the telemetry runtime: no metrics, spans or
// events are recorded anywhere in the cluster. Decisions/usage stats that
// ride on the registry read as zero. This is the obs-off arm of the
// instrumentation-overhead benchmark.
func WithoutObservability() Option { return func(c *config) { c.noObs = true } }

// Sim is a ready-to-use simulated cluster with KubeShare installed.
type Sim struct {
	// Env is the discrete-event environment; use Go/Run on the Sim for the
	// common cases.
	Env *sim.Env
	// Cluster is the underlying miniature Kubernetes cluster.
	Cluster *kube.Cluster
	// KS is the installed KubeShare (nil with WithoutKubeShare).
	KS *core.KubeShare
}

// New builds a cluster, registers the workload images, and installs
// KubeShare (unless configured otherwise).
func New(opts ...Option) (*Sim, error) {
	cfg := config{nodes: 1, gpusPerNode: 4}
	for _, o := range opts {
		o(&cfg)
	}
	env := sim.NewEnv()
	kc := kube.Config{DisableObs: cfg.noObs}
	for i := 0; i < cfg.nodes; i++ {
		kc.Nodes = append(kc.Nodes, kube.NodeConfig{
			Name:   fmt.Sprintf("node-%d", i),
			GPUs:   cfg.gpusPerNode,
			GPUMem: cfg.gpuMem,
		})
	}
	cluster, err := kube.NewCluster(env, kc)
	if err != nil {
		return nil, err
	}
	workload.RegisterImages(cluster)
	s := &Sim{Env: env, Cluster: cluster}
	switch {
	case cfg.noKubeShare:
	case cfg.extender:
		ks, _, err := schedfw.InstallExtender(cluster, cfg.ks, cfg.sched...)
		if err != nil {
			return nil, err
		}
		s.KS = ks
	default:
		ks, err := schedfw.Install(cluster, cfg.ks, cfg.sched...)
		if err != nil {
			return nil, err
		}
		s.KS = ks
	}
	return s, nil
}

// Go spawns a simulation process (runs when Run/RunFor advance time).
func (s *Sim) Go(name string, fn func(p *sim.Proc)) *sim.Proc {
	return s.Env.Go(name, fn)
}

// Run advances virtual time until no further events exist (the cluster has
// quiesced).
func (s *Sim) Run() { s.Env.Run() }

// RunFor advances virtual time by d.
func (s *Sim) RunFor(d time.Duration) { s.Env.RunUntil(s.Env.Now() + d) }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.Env.Now() }

// SharePods returns the typed SharePod client.
func (s *Sim) SharePods() apiserver.Client[*core.SharePod] {
	return core.SharePods(s.Cluster.API)
}

// VGPUs returns the typed VGPU client.
func (s *Sim) VGPUs() apiserver.Client[*core.VGPU] {
	return core.VGPUs(s.Cluster.API)
}

// Pods returns the typed native-pod client.
func (s *Sim) Pods() apiserver.Client[*api.Pod] { return s.Cluster.Pods() }

// SharePodSets returns the typed SharePodSet client.
func (s *Sim) SharePodSets() apiserver.Client[*core.SharePodSet] {
	return core.SharePodSets(s.Cluster.API)
}

// CreateSharePod submits a sharePod.
func (s *Sim) CreateSharePod(sp *SharePod) (*SharePod, error) {
	return s.SharePods().Create(sp)
}

// RegisterImage binds an image name to an entrypoint for containers
// launched in this cluster.
func (s *Sim) RegisterImage(name string, entry ImageEntrypoint) {
	s.Cluster.Images.Register(name, entry)
}

// ImageEntrypoint is a container main function; it receives the container
// context (proc, env vars, CUDA handle) and its return value is the
// container's exit status.
type ImageEntrypoint = runtime.Entrypoint

// ContainerCtx is the execution context passed to an ImageEntrypoint.
type ContainerCtx = runtime.Ctx

// Watch subscribes to a kind ("SharePod", "VGPU", "Pod", "Node", ...) with
// optional server-side filtering by exact name and label selector. Events
// the filter rejects are never delivered — the subscription costs
// O(matching events), not O(cluster churn). Cancel with StopWatch.
func (s *Sim) Watch(kind string, opts WatchOptions) *sim.Queue[Event] {
	return s.Cluster.API.WatchFiltered(kind, opts)
}

// StopWatch cancels a subscription created by Watch and closes its queue.
func (s *Sim) StopWatch(q *sim.Queue[Event]) { s.Cluster.API.StopWatch(q) }

// Stats is a point-in-time snapshot of cluster and KubeShare state — the
// one-call observability surface replacing ad-hoc per-object queries.
type Stats struct {
	// Now is the virtual time of the snapshot.
	Now time.Duration
	// SharePods counts all SharePod objects; Pending/Running/Terminated
	// break them down by phase group.
	SharePods           int
	PendingSharePods    int
	RunningSharePods    int
	TerminatedSharePods int
	// VGPUs counts pool devices; IdleVGPUs those without tenants.
	VGPUs     int
	IdleVGPUs int
	// Pods and Nodes count the native objects.
	Pods  int
	Nodes int
	// Decisions is the number of Algorithm 1 invocations so far (0 without
	// KubeShare installed).
	Decisions int64
	// Usage maps each running sharePod to its current sliding-window GPU
	// usage share as measured by the node's device library backend — the
	// signal Figure 6 plots.
	Usage map[string]float64
}

// Stats returns a consistent snapshot of the cluster at the current virtual
// instant.
func (s *Sim) Stats() Stats {
	st := Stats{
		Now:   s.Env.Now(),
		Pods:  s.Pods().Count(),
		Nodes: apiserver.Nodes(s.Cluster.API).Count(),
		Usage: map[string]float64{},
	}
	if s.KS == nil {
		return st
	}
	st.Decisions = s.KS.Stats().Decisions
	for _, v := range s.VGPUs().List() {
		st.VGPUs++
		if v.Status.Phase == core.VGPUIdle {
			st.IdleVGPUs++
		}
	}
	for _, sp := range s.SharePods().List() {
		st.SharePods++
		switch {
		case sp.Terminated():
			st.TerminatedSharePods++
		case sp.Status.Phase == core.SharePodRunning:
			st.RunningSharePods++
			st.Usage[sp.Name] = s.usageRate(sp)
		default:
			st.PendingSharePods++
		}
	}
	return st
}

func (s *Sim) usageRate(sp *SharePod) float64 {
	if sp.Status.UUID == "" || sp.Status.BoundPod == "" {
		return 0
	}
	backend, ok := s.KS.Backends[sp.Spec.NodeName]
	if !ok {
		return 0
	}
	mgr := backend.Manager(sp.Status.UUID)
	total := 0.0
	for _, c := range sp.Spec.Pod.Containers {
		total += mgr.UsageRate(sp.Status.BoundPod + "/" + c.Name)
	}
	return total
}

// SchedStats snapshots the scheduling and recovery counters off the
// telemetry registry: decisions, requeues, no-capacity cycles, pending
// depth, and DevMgr vGPU recoveries — the single struct replacing the old
// per-counter accessors. Zero-valued when the Sim was built
// WithoutKubeShare or WithoutObservability.
func (s *Sim) SchedStats() SchedStats {
	if s.KS == nil {
		return SchedStats{}
	}
	return s.KS.Stats()
}

// Metrics returns a point-in-time snapshot of every counter, gauge and
// histogram in the cluster's telemetry registry, sorted by name. The
// snapshot is empty when the Sim was built WithoutObservability.
func (s *Sim) Metrics() MetricsSnapshot { return s.Cluster.Obs.Snapshot() }

// Trace returns a copy of every span recorded so far, in creation order.
// Spans carry causal parent links within their chain key; filter one
// object's chain with TraceChain(s.Trace(), "SharePod/<name>").
func (s *Sim) Trace() []Span { return s.Cluster.Obs.Tracer().Spans() }

// Events returns the ordered log of every cluster event recorded so far
// (scheduling rejections, vGPU lifecycle, device faults, chaos, ...). The
// same events are persisted as deduplicated api.Event objects, watchable
// via Watch("Event", ...).
func (s *Sim) Events() []EventRecord { return s.Cluster.Obs.Events() }

// EventObjects returns the persisted api.Event objects (deduplicated by
// involved object + reason, with occurrence counts), sorted by name.
func (s *Sim) EventObjects() []*api.Event {
	return apiserver.Events(s.Cluster.API).List()
}

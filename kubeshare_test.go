package kubeshare

import (
	"testing"
	"time"

	"kubeshare/internal/sim"
)

func TestFacadeQuickstart(t *testing.T) {
	s, err := New(WithNodes(1))
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterImage("hello-gpu", func(ctx *ContainerCtx) error {
		return ctx.CUDA.LaunchKernel(ctx.Proc, 100*time.Millisecond)
	})
	var got *SharePod
	s.Go("main", func(p *sim.Proc) {
		_, err := s.CreateSharePod(&SharePod{
			ObjectMeta: ObjectMeta{Name: "hello"},
			Spec: SharePodSpec{
				GPURequest: 0.5, GPULimit: 1, GPUMem: 0.25,
				Pod: PodSpec{Containers: []Container{{Name: "c", Image: "hello-gpu"}}},
			},
		})
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		q := s.Watch(KindSharePod, WatchOptions{Name: "hello", Replay: true})
		defer s.StopWatch(q)
		for {
			ev, ok := q.Get(p)
			if !ok {
				t.Error("watch closed waiting for hello")
				return
			}
			if sp := ev.Object.(*SharePod); sp.Terminated() {
				got = sp
				return
			}
		}
	})
	s.Run()
	if got == nil || got.Status.Phase != SharePodSucceeded {
		t.Fatalf("sharePod = %+v", got)
	}
}

func TestFacadeRunForAdvancesTime(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0 {
		t.Fatal("clock not at zero")
	}
	s.RunFor(3 * time.Second)
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestFacadeWithoutKubeShare(t *testing.T) {
	s, err := New(WithoutKubeShare())
	if err != nil {
		t.Fatal(err)
	}
	if s.KS != nil {
		t.Fatal("KubeShare installed despite WithoutKubeShare")
	}
	// SharePods are inert without controllers: creation works (no
	// validator either) but nothing schedules them; native pods still run.
	s.RegisterImage("noop", func(ctx *ContainerCtx) error { return nil })
	s.Go("main", func(p *sim.Proc) {
		if _, err := s.Pods().Create(&Pod{
			ObjectMeta: ObjectMeta{Name: "native"},
			Spec:       PodSpec{Containers: []Container{{Name: "c", Image: "noop"}}},
		}); err != nil {
			t.Errorf("create: %v", err)
		}
	})
	s.Run()
	pod, err := s.Pods().Get("native")
	if err != nil || pod.Status.Phase != "Succeeded" {
		t.Fatalf("pod = %+v err=%v", pod, err)
	}
}

func TestFacadeExtenderOption(t *testing.T) {
	s, err := New(WithExtenderScheduler(), WithGPUsPerNode(2))
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterImage("burn", func(ctx *ContainerCtx) error {
		return ctx.CUDA.LaunchKernel(ctx.Proc, time.Second)
	})
	s.Go("main", func(p *sim.Proc) {
		for _, n := range []string{"x", "y"} {
			if _, err := s.CreateSharePod(&SharePod{
				ObjectMeta: ObjectMeta{Name: n},
				Spec: SharePodSpec{
					GPURequest: 0.5, GPULimit: 0.5, GPUMem: 0.2,
					Pod: PodSpec{Containers: []Container{{Name: "c", Image: "burn"}}},
				},
			}); err != nil {
				t.Errorf("create %s: %v", n, err)
			}
		}
	})
	s.Run()
	for _, n := range []string{"x", "y"} {
		sp, err := s.SharePods().Get(n)
		if err != nil || sp.Status.Phase != SharePodSucceeded {
			t.Fatalf("%s: %+v err=%v", n, sp, err)
		}
		// Extender ids are round-robin per node.
		if sp.Spec.GPUID == "" {
			t.Fatalf("%s not placed", n)
		}
	}
}

func TestFacadePoolPolicyOption(t *testing.T) {
	s, err := New(WithPoolPolicy(Reservation))
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterImage("quick", func(ctx *ContainerCtx) error {
		return ctx.CUDA.LaunchKernel(ctx.Proc, 10*time.Millisecond)
	})
	s.Go("main", func(p *sim.Proc) {
		s.CreateSharePod(&SharePod{
			ObjectMeta: ObjectMeta{Name: "one"},
			Spec: SharePodSpec{
				GPURequest: 0.5, GPULimit: 1, GPUMem: 0.2,
				Pod: PodSpec{Containers: []Container{{Name: "c", Image: "quick"}}},
			},
		})
	})
	s.RunFor(time.Minute)
	vgpus := s.VGPUs().List()
	if len(vgpus) != 1 {
		t.Fatalf("vGPUs = %d, want 1 idle (reservation)", len(vgpus))
	}
}

func TestFacadeUsageRate(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterImage("spin", func(ctx *ContainerCtx) error {
		for i := 0; i < 10000; i++ {
			if err := ctx.CUDA.LaunchKernel(ctx.Proc, 10*time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	})
	s.Go("main", func(p *sim.Proc) {
		s.CreateSharePod(&SharePod{
			ObjectMeta: ObjectMeta{Name: "spin"},
			Spec: SharePodSpec{
				GPURequest: 0.3, GPULimit: 0.6, GPUMem: 0.2,
				Pod: PodSpec{Containers: []Container{{Name: "c", Image: "spin"}}},
			},
		})
	})
	s.RunFor(30 * time.Second)
	usage := s.Stats().Usage
	rate := usage["spin"]
	if rate < 0.5 || rate > 0.65 {
		t.Fatalf("usage rate %.3f, want ≈0.6 (throttled at limit)", rate)
	}
	if _, ok := usage["ghost"]; ok {
		t.Fatal("unknown sharePod has usage entry")
	}
}

func TestFacadeTokenQuotaOption(t *testing.T) {
	s, err := New(WithTokenQuota(30 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if s.KS.Backends["node-0"].Config().Quota != 30*time.Millisecond {
		t.Fatalf("quota = %v", s.KS.Backends["node-0"].Config().Quota)
	}
}

func TestFacadeWatchNameFilteredNoWake(t *testing.T) {
	s, err := New(WithNodes(1))
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterImage("noop-gpu", func(ctx *ContainerCtx) error {
		return ctx.CUDA.LaunchKernel(ctx.Proc, 50*time.Millisecond)
	})
	// Subscribe to a sharePod that will never exist, then generate plenty of
	// unrelated churn. The name filter must keep the queue silent.
	q := s.Watch(KindSharePod, WatchOptions{Name: "never-created", Replay: true})
	defer s.StopWatch(q)
	s.Go("main", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			name := "churn-" + string(rune('a'+i))
			if _, err := s.CreateSharePod(&SharePod{
				ObjectMeta: ObjectMeta{Name: name},
				Spec: SharePodSpec{
					GPURequest: 0.2, GPULimit: 0.5, GPUMem: 0.1,
					Pod: PodSpec{Containers: []Container{{Name: "c", Image: "noop-gpu"}}},
				},
			}); err != nil {
				t.Errorf("create %s: %v", name, err)
			}
		}
	})
	s.Run()
	if ev, ok := q.TryGet(); ok {
		t.Fatalf("name-filtered watch woke on unrelated event: %+v", ev)
	}
	// A selector-filtered watch over the same churn does deliver events.
	q2 := s.Watch(KindSharePod, WatchOptions{Replay: true})
	defer s.StopWatch(q2)
	if _, ok := q2.TryGet(); !ok {
		t.Fatal("unfiltered replay watch saw nothing")
	}
}

func TestFacadeStats(t *testing.T) {
	s, err := New(WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterImage("work", func(ctx *ContainerCtx) error {
		return ctx.CUDA.LaunchKernel(ctx.Proc, 200*time.Millisecond)
	})
	s.Go("main", func(p *sim.Proc) {
		for _, name := range []string{"a", "b"} {
			if _, err := s.CreateSharePod(&SharePod{
				ObjectMeta: ObjectMeta{Name: name},
				Spec: SharePodSpec{
					GPURequest: 0.4, GPULimit: 0.8, GPUMem: 0.2,
					Pod: PodSpec{Containers: []Container{{Name: "c", Image: "work"}}},
				},
			}); err != nil {
				t.Errorf("create %s: %v", name, err)
			}
		}
	})
	s.Run()
	st := s.Stats()
	if st.SharePods != 2 || st.TerminatedSharePods != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Nodes != 2 {
		t.Fatalf("nodes = %d", st.Nodes)
	}
	if st.Decisions == 0 {
		t.Fatal("no scheduling decisions recorded")
	}
	// All sharePods are done: vGPUs have been garbage-collected and nothing
	// is reporting usage.
	if len(st.Usage) != 0 {
		t.Fatalf("usage reported for terminated sharePods: %v", st.Usage)
	}
}

// TestFacadeTraceCausalChain drives one sharePod to completion and checks
// that its life is reconstructable from Sim.Trace() as a single causally
// linked chain crossing all six instrumented layers.
func TestFacadeTraceCausalChain(t *testing.T) {
	s, err := New(WithNodes(1))
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterImage("traced", func(ctx *ContainerCtx) error {
		return ctx.CUDA.LaunchKernel(ctx.Proc, 100*time.Millisecond)
	})
	s.Go("main", func(p *sim.Proc) {
		s.CreateSharePod(&SharePod{
			ObjectMeta: ObjectMeta{Name: "traced"},
			Spec: SharePodSpec{
				GPURequest: 0.5, GPULimit: 1, GPUMem: 0.25,
				Pod: PodSpec{Containers: []Container{{Name: "c", Image: "traced"}}},
			},
		})
	})
	s.Run()

	chain := TraceChain(s.Trace(), "SharePod/traced")
	want := []struct{ component, op string }{
		{"apiserver", "create"},
		{"kubeshare-sched", "schedule"},
		{"devmgr", "bind"},
		{"devmgr", "holder-ready"},
		{"kubelet", "pod-sync"},
		{"devlib", "token-grant"},
		{"gpusim", "kernel-launch"},
	}
	var gotOps []string
	for _, sp := range chain {
		gotOps = append(gotOps, sp.Component+"/"+sp.Op)
	}
	idx := 0
	for _, sp := range chain {
		if idx < len(want) && sp.Component == want[idx].component && sp.Op == want[idx].op {
			idx++
		}
	}
	if idx != len(want) {
		t.Fatalf("chain missing milestone %s/%s; got %v", want[idx].component, want[idx].op, gotOps)
	}
	// Every span after the root must be causally linked within the chain.
	ids := map[int64]bool{}
	for i, sp := range chain {
		ids[sp.ID] = true
		if i == 0 {
			if sp.Parent != 0 {
				t.Fatalf("root span has parent %d", sp.Parent)
			}
			continue
		}
		if !ids[sp.Parent] {
			t.Fatalf("span #%d (%s/%s) parent #%d not in chain", sp.ID, sp.Component, sp.Op, sp.Parent)
		}
	}

	// Metrics and events from the same run.
	m := s.Metrics()
	if m.Counter("kubeshare_sched_decisions_total") == 0 {
		t.Fatal("no decisions counted")
	}
	if m.Counter("kubeshare_devmgr_vgpu_creates_total") != 1 {
		t.Fatalf("vgpu creates = %d", m.Counter("kubeshare_devmgr_vgpu_creates_total"))
	}
	if h, ok := m.Histogram("kubeshare_sched_latency_seconds"); !ok || h.Count == 0 {
		t.Fatal("scheduling-latency histogram empty")
	}
	found := false
	for _, ev := range s.Events() {
		if ev.Source == "kubelet/node-0" && ev.Reason == "Started" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no kubelet Started event in %d events", len(s.Events()))
	}
	// Events are also persisted as first-class objects.
	if len(s.EventObjects()) == 0 {
		t.Fatal("no api.Event objects persisted")
	}
}

func TestFacadeWithoutObservability(t *testing.T) {
	s, err := New(WithoutObservability())
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterImage("dark", func(ctx *ContainerCtx) error {
		return ctx.CUDA.LaunchKernel(ctx.Proc, 50*time.Millisecond)
	})
	s.Go("main", func(p *sim.Proc) {
		s.CreateSharePod(&SharePod{
			ObjectMeta: ObjectMeta{Name: "dark"},
			Spec: SharePodSpec{
				GPURequest: 0.5, GPULimit: 1, GPUMem: 0.25,
				Pod: PodSpec{Containers: []Container{{Name: "c", Image: "dark"}}},
			},
		})
	})
	s.Run()
	sp, err := s.SharePods().Get("dark")
	if err != nil || sp.Status.Phase != SharePodSucceeded {
		t.Fatalf("sharePod = %+v err=%v", sp, err)
	}
	if n := len(s.Trace()); n != 0 {
		t.Fatalf("obs-off run recorded %d spans", n)
	}
	if n := len(s.Events()); n != 0 {
		t.Fatalf("obs-off run recorded %d events", n)
	}
	m := s.Metrics()
	if len(m.Counters)+len(m.Gauges)+len(m.Histograms) != 0 {
		t.Fatalf("obs-off run registered metrics: %+v", m)
	}
}

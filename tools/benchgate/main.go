// Command benchgate is the perf-regression gate over BENCH.json: for each
// watched metric it compares the newest record carrying that section
// against the previous one and fails (exit 1) when the value moved past
// the rule's declared tolerance in the bad direction.
//
// Records accumulate oldest-first (bench.sh appends via tools/benchmerge),
// so "newest vs previous" is the last two records that contain the
// section — sections introduced by later sessions simply have a shorter
// history, and a section seen fewer than twice is skipped, not failed.
//
// Tolerances are deliberately loose for wall-clock-derived ratios
// (machines differ; bench.sh itself documents ±30% micro-benchmark noise)
// and tight for virtual-clock quantities, which are deterministic modulo
// intended behavior changes. An intended change that trips the gate is
// acknowledged by the new BENCH.json record itself — the gate compares
// the last two records, so the next run re-baselines.
//
// Usage:
//
//	go run ./tools/benchgate            # gate BENCH.json in the CWD
//	go run ./tools/benchgate -f FILE
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// rule watches one dotted path inside a record section.
type rule struct {
	// path is the dotted location of the value, rooted at the record
	// ("fig15_scheduler_throughput.batched_speedup"). The first segment
	// is the section whose presence selects comparable records.
	path string
	// higherBetter orients the comparison; ignored for absMax rules.
	higherBetter bool
	// relTol is the allowed fractional regression vs the previous record
	// (0.10 = fail past 10% worse). Zero disables the relative check.
	relTol float64
	// absMax, when non-nil, bounds the newest value absolutely — used for
	// budget metrics like the obs overhead, where "worse than last time
	// but still within budget" is fine.
	absMax *float64
}

func f(v float64) *float64 { return &v }

// rules is the watched-metric table. Virtual-clock ratios get tight
// tolerances; wall-clock-derived ones get loose tolerances.
var rules = []rule{
	// Batched-cycle speedup is a virtual-clock ratio; history is constant.
	{path: "fig15_scheduler_throughput.batched_speedup", higherBetter: true, relTol: 0.10},
	// Lane speedup is wall-clock and machine-sensitive.
	{path: "fig16_scale_sweep.best_lane_speedup", higherBetter: true, relTol: 0.25},
	// Modeled outage is virtual-clock.
	{path: "fig17_recovery_sweep.worst_nockpt_outage_ms", higherBetter: false, relTol: 0.10},
	// Strategy throughputs are virtual-clock from identical seeds.
	{path: "fig18_strategy_comparison.small_kernel.token_tput", higherBetter: true, relTol: 0.10},
	{path: "fig18_strategy_comparison.small_kernel.mps_tput", higherBetter: true, relTol: 0.10},
	{path: "fig18_strategy_comparison.mps_over_token_small", higherBetter: true, relTol: 0.10},
	// Attribution budget: end-to-end latency per strategy is virtual-clock
	// and the whole point of the fig19 experiment — a regression here is a
	// real latency regression, not noise.
	{path: "fig19_attribution.small_kernel.token_e2e_ms", higherBetter: false, relTol: 0.10},
	{path: "fig19_attribution.small_kernel.mps_e2e_ms", higherBetter: false, relTol: 0.10},
	{path: "fig19_attribution.large_kernel.token_e2e_ms", higherBetter: false, relTol: 0.10},
	// Open chains on the fig19 workloads mean sharePods that never
	// launched — zero by construction, any value is a bug.
	{path: "fig19_attribution.open_chains", absMax: f(0)},
	// Observability overhead carries an absolute budget (<= 5%), not a
	// relative one: run-to-run wall noise exceeds any sane relative tol.
	{path: "obs_overhead.overhead", absMax: f(0.05)},
}

// lookup resolves a dotted path inside a decoded record.
func lookup(rec map[string]any, path string) (float64, bool) {
	cur := any(rec)
	for _, seg := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		if cur, ok = m[seg]; !ok {
			return 0, false
		}
	}
	v, ok := cur.(float64)
	return v, ok
}

// commit names a record for messages.
func commit(rec map[string]any) string {
	if c, ok := rec["commit"].(string); ok {
		return c
	}
	return "?"
}

// gate runs every rule against the decoded BENCH.json document and
// returns the number of violations, reporting each to w.
func gate(doc []byte, w io.Writer) (int, error) {
	var bench struct {
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal(doc, &bench); err != nil {
		return 0, fmt.Errorf("benchgate: %w", err)
	}
	bad := 0
	for _, r := range rules {
		section := strings.SplitN(r.path, ".", 2)[0]
		// The last two records carrying this section, newest last.
		var have []map[string]any
		for _, rec := range bench.Records {
			if _, ok := rec[section]; ok {
				have = append(have, rec)
			}
		}
		if len(have) == 0 {
			continue
		}
		newest := have[len(have)-1]
		nv, ok := lookup(newest, r.path)
		if !ok {
			fmt.Fprintf(w, "benchgate: %s: section present in %s but path missing\n", r.path, commit(newest))
			bad++
			continue
		}
		if r.absMax != nil {
			if nv > *r.absMax {
				fmt.Fprintf(w, "benchgate: %s = %g in %s exceeds the absolute budget %g\n",
					r.path, nv, commit(newest), *r.absMax)
				bad++
			}
			continue
		}
		if len(have) < 2 {
			continue // first record with this section: nothing to compare
		}
		prev := have[len(have)-2]
		pv, ok := lookup(prev, r.path)
		if !ok || pv == 0 {
			continue
		}
		change := nv/pv - 1
		if !r.higherBetter {
			change = -change
		}
		if change < -r.relTol {
			dir := "dropped"
			if !r.higherBetter {
				dir = "rose"
			}
			fmt.Fprintf(w, "benchgate: %s %s %.1f%% (%g in %s -> %g in %s), tolerance %.0f%%\n",
				r.path, dir, -change*100, pv, commit(prev), nv, commit(newest), r.relTol*100)
			bad++
		}
	}
	return bad, nil
}

func main() {
	file := flag.String("f", "BENCH.json", "benchmark history to gate")
	flag.Parse()
	doc, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	bad, err := gate(doc, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) beyond tolerance\n", bad)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions beyond tolerance")
}

package main

import (
	"os"
	"strings"
	"testing"
)

// TestInjectedRegressionFails: a >=10% drop in a watched higher-is-better
// metric must trip the gate.
func TestInjectedRegressionFails(t *testing.T) {
	var out strings.Builder
	bad, err := gate([]byte(`{"records": [
		{"commit": "aaaaaaa", "fig15_scheduler_throughput": {"batched_speedup": 63.66}},
		{"commit": "bbbbbbb", "fig15_scheduler_throughput": {"batched_speedup": 56.0}}
	]}`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("want 1 violation for a 12%% drop, got %d:\n%s", bad, out.String())
	}
	if !strings.Contains(out.String(), "fig15_scheduler_throughput.batched_speedup") {
		t.Errorf("violation message missing the metric path:\n%s", out.String())
	}
}

// TestLowerIsBetterRegressionFails: a watched lower-is-better metric that
// rises past tolerance must trip the gate, and one within tolerance must
// not.
func TestLowerIsBetterRegressionFails(t *testing.T) {
	var out strings.Builder
	bad, err := gate([]byte(`{"records": [
		{"commit": "aaaaaaa", "fig17_recovery_sweep": {"worst_nockpt_outage_ms": 200}},
		{"commit": "bbbbbbb", "fig17_recovery_sweep": {"worst_nockpt_outage_ms": 230}}
	]}`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("want 1 violation for a 15%% outage rise, got %d:\n%s", bad, out.String())
	}
	out.Reset()
	bad, err = gate([]byte(`{"records": [
		{"commit": "aaaaaaa", "fig17_recovery_sweep": {"worst_nockpt_outage_ms": 200}},
		{"commit": "bbbbbbb", "fig17_recovery_sweep": {"worst_nockpt_outage_ms": 210}}
	]}`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("a 5%% rise is within the 10%% tolerance, got %d violations:\n%s", bad, out.String())
	}
}

// TestAbsoluteBudget: absMax rules bound the newest record regardless of
// history depth.
func TestAbsoluteBudget(t *testing.T) {
	var out strings.Builder
	bad, err := gate([]byte(`{"records": [
		{"commit": "aaaaaaa", "obs_overhead": {"overhead": 0.07}}
	]}`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("want 1 violation for 7%% obs overhead against the 5%% budget, got %d", bad)
	}
}

// TestSingleRecordSkipped: a section seen once has no baseline — skipped,
// not failed.
func TestSingleRecordSkipped(t *testing.T) {
	var out strings.Builder
	bad, err := gate([]byte(`{"records": [
		{"commit": "aaaaaaa", "fig15_scheduler_throughput": {"batched_speedup": 63.66}}
	]}`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("single-record section must be skipped, got %d violations:\n%s", bad, out.String())
	}
}

// TestCommittedHistoryPasses: the repository's own BENCH.json must clear
// the gate — the tolerances are calibrated against the real history.
func TestCommittedHistoryPasses(t *testing.T) {
	doc, err := os.ReadFile("../../BENCH.json")
	if err != nil {
		t.Skipf("no BENCH.json: %v", err)
	}
	var out strings.Builder
	bad, err := gate(doc, &out)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("committed BENCH.json fails the gate:\n%s", out.String())
	}
}

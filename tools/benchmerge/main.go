// Command benchmerge appends one benchmark record (JSON on stdin) to the
// dated record log in BENCH.json. The repo has no jq; this is the few
// lines of Go that replace it.
//
// Usage:
//
//	bench.sh builds a record and runs: go run ./tools/benchmerge -out BENCH.json < record.json
//
// The output file holds every recorded run, oldest first:
//
//	{"generated_by": "bench.sh", "records": [ {...}, {...} ]}
//
// Records are opaque to this tool beyond being valid JSON objects with one
// exception: every benchmark section must say what cpu budget it ran under.
// Wall-clock numbers without cpus/gomaxprocs are uninterpretable (a lane
// sweep on one core timeslices instead of parallelizing), so an incoming
// record is rejected unless each object-valued section — each entry of
// "benchmarks", and every other top-level object section — carries numeric
// "cpus" and "gomaxprocs" fields. Records already in the log are not
// revalidated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

type benchLog struct {
	GeneratedBy string            `json:"generated_by"`
	Records     []json.RawMessage `json:"records"`
}

func run(out string, in io.Reader) error {
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	var record map[string]any
	if err := json.Unmarshal(raw, &record); err != nil {
		return fmt.Errorf("stdin is not a JSON object: %w", err)
	}
	if err := validate(record); err != nil {
		return err
	}
	compact, err := json.Marshal(record)
	if err != nil {
		return err
	}

	log := benchLog{GeneratedBy: "bench.sh"}
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &log); err != nil {
			return fmt.Errorf("%s is not a benchmerge log: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	log.Records = append(log.Records, compact)

	buf, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

// validate rejects records whose benchmark sections omit the cpu budget:
// each entry of "benchmarks" and every other top-level object-valued
// section needs numeric "cpus" and "gomaxprocs".
func validate(record map[string]any) error {
	check := func(section string, v any) error {
		obj, ok := v.(map[string]any)
		if !ok {
			return nil // scalar metadata ("date", "rounds", ...) — no budget to record
		}
		for _, field := range []string{"cpus", "gomaxprocs"} {
			if _, ok := obj[field].(float64); !ok {
				return fmt.Errorf("section %q is missing numeric %q; bench.sh must record the cpu budget per section", section, field)
			}
		}
		return nil
	}
	for key, v := range record {
		if key == "benchmarks" {
			benches, ok := v.(map[string]any)
			if !ok {
				return fmt.Errorf(`"benchmarks" is not a JSON object`)
			}
			for name, b := range benches {
				if err := check("benchmarks."+name, b); err != nil {
					return err
				}
			}
			continue
		}
		if err := check(key, v); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	out := flag.String("out", "BENCH.json", "benchmark log to append to")
	flag.Parse()
	if err := run(*out, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
}

// Command benchmerge appends one benchmark record (JSON on stdin) to the
// dated record log in BENCH.json. The repo has no jq; this is the few
// lines of Go that replace it.
//
// Usage:
//
//	bench.sh builds a record and runs: go run ./tools/benchmerge -out BENCH.json < record.json
//
// The output file holds every recorded run, oldest first:
//
//	{"generated_by": "bench.sh", "records": [ {...}, {...} ]}
//
// Records are opaque to this tool beyond being valid JSON objects, so
// bench.sh can evolve the record shape without touching it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

type benchLog struct {
	GeneratedBy string            `json:"generated_by"`
	Records     []json.RawMessage `json:"records"`
}

func run(out string, in io.Reader) error {
	raw, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	var record map[string]any
	if err := json.Unmarshal(raw, &record); err != nil {
		return fmt.Errorf("stdin is not a JSON object: %w", err)
	}
	compact, err := json.Marshal(record)
	if err != nil {
		return err
	}

	log := benchLog{GeneratedBy: "bench.sh"}
	if prev, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(prev, &log); err != nil {
			return fmt.Errorf("%s is not a benchmerge log: %w", out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	log.Records = append(log.Records, compact)

	buf, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(buf, '\n'), 0o644)
}

func main() {
	out := flag.String("out", "BENCH.json", "benchmark log to append to")
	flag.Parse()
	if err := run(*out, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchmerge:", err)
		os.Exit(1)
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goodRecord = `{
  "date": "2026-08-08T00:00:00Z",
  "cpus": 4,
  "rounds": 3,
  "benchmarks": {
    "BenchmarkTimerChurn": {"cpus": 4, "gomaxprocs": 4, "ns_op": 123}
  },
  "fig16_scale_sweep": {"cpus": 4, "gomaxprocs": 4, "best_lane_speedup": 2.6}
}`

func TestAppendValidRecord(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	for i := 0; i < 2; i++ {
		if err := run(out, strings.NewReader(goodRecord)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var log benchLog
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(log.Records))
	}
}

func TestRejectMissingCPUBudget(t *testing.T) {
	for name, record := range map[string]string{
		"bench entry without gomaxprocs": `{"benchmarks": {"BenchmarkX": {"cpus": 4, "ns_op": 1}}}`,
		"bench entry without cpus":       `{"benchmarks": {"BenchmarkX": {"gomaxprocs": 4, "ns_op": 1}}}`,
		"section without budget":         `{"obs_overhead": {"on_ns": 1, "off_ns": 1}}`,
		"non-numeric budget":             `{"obs_overhead": {"cpus": "4", "gomaxprocs": 4}}`,
	} {
		out := filepath.Join(t.TempDir(), "BENCH.json")
		err := run(out, strings.NewReader(record))
		if err == nil || !strings.Contains(err.Error(), "cpu budget") {
			t.Errorf("%s: err = %v, want cpu-budget rejection", name, err)
		}
		if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
			t.Errorf("%s: rejected record still wrote %s", name, out)
		}
	}
}

// Command detvet enforces the repository's determinism rules on simulation
// code: files under the given roots must not read the wall clock
// (time.Now), print to stdout (fmt.Print*), or import the global random
// number generator (math/rand). Every source of time and randomness must
// flow through sim.Env and simrand so a seeded run is bit-reproducible.
//
// It also enforces metric-name hygiene on the telemetry registry: every
// literal name passed to Counter/Gauge/FloatGauge/Histogram (and their
// *Vec forms) must be kubeshare_-prefixed snake_case, and *Vec label KEYS
// must come from the bounded vocabulary (gpu_uuid, tenant, node, pool,
// consumer, strategy) —
// label values may only be object names/UUIDs or closed enums, never
// free-form strings, and a bounded key set is what keeps cardinality
// reviewable.
//
// A fourth rule guards the event-lane barrier windows (laneguard): a
// function literal passed to FanOut runs concurrently on every lane and
// must stay read-only with respect to simulation state — it may not call
// scheduling or mutating selectors (After, At, Go, GoDaemon, Put, Trigger,
// Create, Update, Delete, Mutate*). Cross-lane results travel only through
// the LaneSend mailbox, which the barrier drains deterministically.
//
// A fifth rule keeps the metrics reference honest (-metricsdoc): every
// kubeshare_ family registered in the scanned roots must have a row in
// the generated docs/METRICS.md, and every static doc row must have a
// registration site. Dynamic rows (a <placeholder> in the name) are
// exempt from the code-side check.
//
// Usage:
//
//	go run ./tools/detvet -metricsdoc docs/METRICS.md ./internal
//
// Test files (_test.go) and testdata directories are skipped. The
// internal/simrand package is exempt — it is the seeded wrapper the rule
// funnels everyone else through. A line ending in a "//det:allow" comment
// is exempt; use it for deliberately injectable wall-clock defaults that
// only run off-simulation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"kubeshare/tools/metricscan"
)

// exemptDirs are package directories (slash-separated suffixes) the rules
// do not apply to.
var exemptDirs = []string{"internal/simrand"}

// bannedImports are import paths simulation code must not use.
var bannedImports = map[string]string{
	"math/rand":    "use kubeshare/internal/simrand (seeded streams) instead",
	"math/rand/v2": "use kubeshare/internal/simrand (seeded streams) instead",
}

// dirBannedImports bans imports only within package directories matching a
// slash-separated suffix. Scheduler plugins read cluster state exclusively
// through the framework's Pool/Txn view and write through Reserve — a
// plugin holding an apiserver or store handle could bypass the cycle
// transaction, breaking batched conflict resolution and gang rollback.
var dirBannedImports = map[string]map[string]string{
	"schedfw/plugins": {
		"kubeshare/internal/kube/apiserver": "plugins must not reach the API server; read the Pool, write via Txn/Reserve",
		"kubeshare/internal/kube/store":     "plugins must not reach the store; read the Pool, write via Txn/Reserve",
	},
	// Sharing-strategy implementations arbitrate device time below the
	// control plane: they see clients only through the Strategy interface
	// (Register/Admit/Release), so a strategy holding an apiserver or store
	// handle could condition grants on cluster state the device layer must
	// not know about.
	"devlib/sharing": {
		"kubeshare/internal/kube/apiserver": "sharing strategies arbitrate device time; cluster state stays above the Strategy interface",
		"kubeshare/internal/kube/store":     "sharing strategies arbitrate device time; cluster state stays above the Strategy interface",
	},
	// The WAL/checkpoint layer must stay deterministic and replayable: the
	// log is modeled in memory with virtual-clock I/O costs, never real
	// files, and record ordering comes from store revisions, never wall
	// timestamps — so neither os nor time may creep into the package.
	"kube/store": {
		"os":   "the WAL is modeled in memory with virtual I/O costs; no real files",
		"time": "durability ordering comes from store revisions and sim.Env's virtual clock; no wall time",
	},
}

// metricMethods are registry methods whose first argument is a metric
// name; "true" marks the labeled (*Vec) forms whose remaining string
// arguments are label keys.
var metricMethods = map[string]bool{
	"Counter": false, "Gauge": false, "FloatGauge": false, "Histogram": false,
	"CounterVec": true, "GaugeVec": true, "FloatGaugeVec": true, "HistogramVec": true,
}

// allowedLabelKeys is the bounded label vocabulary. Values for these keys
// are object names and UUIDs, so per-family cardinality stays proportional
// to cluster size; strategy values come from the closed sharing.Mode enum.
var allowedLabelKeys = map[string]bool{
	"gpu_uuid": true, "tenant": true, "node": true, "pool": true, "consumer": true,
	"strategy": true,
}

// metricName matches kubeshare_-prefixed snake_case.
var metricName = regexp.MustCompile(`^kubeshare_[a-z0-9]+(_[a-z0-9]+)*$`)

// bannedSelectors maps package import path -> selector -> reason.
var bannedSelectors = map[string]map[string]string{
	"time": {
		"Now": "use sim.Env.Now (virtual clock) instead",
	},
	"fmt": {
		"Print":   "simulation code must not write to stdout; return data or use obs",
		"Printf":  "simulation code must not write to stdout; return data or use obs",
		"Println": "simulation code must not write to stdout; return data or use obs",
	},
}

// laneBannedSelectors are method names a FanOut window closure must not
// call: schedulers (they enqueue events — the kernel panics at runtime,
// this rule catches it at review time) and store mutators (they would race
// with the other lanes and bypass the deterministic mailbox drain). The
// check is syntactic — any selector with one of these names, or a Mutate*
// prefix, is flagged regardless of receiver type; a deliberate non-sim
// call can carry //det:allow.
var laneBannedSelectors = map[string]bool{
	"After": true, "At": true, "Go": true, "GoDaemon": true,
	"Put": true, "Trigger": true, "Create": true, "Update": true,
	"Delete": true,
}

func main() {
	metricsDoc := flag.String("metricsdoc", "", "path to the generated METRICS.md; enables the doc/code sync rule")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "usage: detvet [-metricsdoc FILE] <dir> [dir ...]")
		os.Exit(2)
	}
	bad := 0
	if *metricsDoc != "" {
		bad += checkMetricsDoc(*metricsDoc, roots)
	}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				dir := filepath.ToSlash(path)
				for _, ex := range exemptDirs {
					if strings.HasSuffix(dir, ex) {
						return filepath.SkipDir
					}
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			bad += checkFile(path)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "detvet: %v\n", err)
			os.Exit(2)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "detvet: %d violation(s)\n", bad)
		os.Exit(1)
	}
}

// checkMetricsDoc enforces the registered-families ↔ docs/METRICS.md sync
// in both directions: a registered kubeshare_ family without a doc row is
// undocumented telemetry; a static doc row without a registration site is
// a stale doc. Dynamic doc rows (a <placeholder> in the name) have no
// statically-scannable registration and are skipped.
func checkMetricsDoc(docPath string, roots []string) int {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detvet: -metricsdoc: %v (run `go run ./tools/metricsdoc` to generate it)\n", err)
		return 1
	}
	metrics, err := metricscan.Scan(roots...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detvet: %v\n", err)
		return 1
	}
	static, _ := metricscan.DocNames(string(doc))
	documented := map[string]bool{}
	for _, n := range static {
		documented[n] = true
	}
	registered := map[string]bool{}
	bad := 0
	for _, m := range metrics {
		registered[m.Name] = true
		if !documented[m.Name] {
			fmt.Fprintf(os.Stderr, "detvet: metric %s is registered but missing from %s; run `go run ./tools/metricsdoc`\n", m.Name, docPath)
			bad++
		}
	}
	for _, n := range static {
		if !registered[n] {
			fmt.Fprintf(os.Stderr, "detvet: %s documents %s but no registration site exists; run `go run ./tools/metricsdoc`\n", docPath, n)
			bad++
		}
	}
	return bad
}

// checkFile parses one file and reports its violations.
func checkFile(path string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detvet: %v\n", err)
		return 1
	}

	// Lines carrying a //det:allow comment are exempt.
	allowed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "det:allow") {
				allowed[fset.Position(c.Pos()).Line] = true
			}
		}
	}

	bad := 0
	report := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		if allowed[p.Line] {
			return
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", p.Filename, p.Line, p.Column, msg)
		bad++
	}

	// localName maps the in-file identifier of each watched import to its
	// import path ("time", "fmt"), honouring renamed imports.
	dir := filepath.ToSlash(filepath.Dir(path))
	localName := map[string]string{}
	for _, imp := range f.Imports {
		ip, _ := strconv.Unquote(imp.Path.Value)
		if reason, banned := bannedImports[ip]; banned {
			report(imp.Pos(), fmt.Sprintf("import %q forbidden: %s", ip, reason))
		}
		for suffix, rules := range dirBannedImports {
			if !strings.HasSuffix(dir, suffix) {
				continue
			}
			if reason, banned := rules[ip]; banned {
				report(imp.Pos(), fmt.Sprintf("import %q forbidden in %s: %s", ip, suffix, reason))
			}
		}
		if _, watched := bannedSelectors[ip]; watched {
			name := filepath.Base(ip)
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				localName[name] = ip
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkMetricCall(call, report)
			checkFanOutWindow(call, report)
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || ident.Obj != nil { // Obj != nil means a local shadows the package name
			return true
		}
		ip, watched := localName[ident.Name]
		if !watched {
			return true
		}
		if reason, banned := bannedSelectors[ip][sel.Sel.Name]; banned {
			report(sel.Pos(), fmt.Sprintf("%s.%s forbidden: %s", ident.Name, sel.Sel.Name, reason))
		}
		return true
	})
	return bad
}

// checkFanOutWindow applies the laneguard rule: if this call is
// <recv>.FanOut(func(...){...}), walk the window closure (nested function
// literals included) and flag every banned scheduling/mutating selector.
// LaneSend is the one sanctioned side effect.
func checkFanOutWindow(call *ast.CallExpr, report func(token.Pos, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "FanOut" || len(call.Args) == 0 {
		return
	}
	fn, ok := call.Args[0].(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		inner, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		is, ok := inner.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := is.Sel.Name
		if laneBannedSelectors[name] || strings.HasPrefix(name, "Mutate") {
			report(is.Sel.Pos(), fmt.Sprintf(
				"%s inside a FanOut window: lane closures must be read-only; exchange results via LaneSend", name))
		}
		return true
	})
}

// checkMetricCall enforces the metric-name hygiene rules on one call
// expression, if it is a registry method with a literal metric name.
// Non-literal names are not flagged: the registry is only reached through
// these helpers, and every production call site uses a literal.
func checkMetricCall(call *ast.CallExpr, report func(token.Pos, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	isVec, watched := metricMethods[sel.Sel.Name]
	if !watched {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !metricName.MatchString(name) {
		report(lit.Pos(), fmt.Sprintf("metric name %q must be kubeshare_-prefixed snake_case", name))
	}
	if !isVec {
		return
	}
	if len(call.Args) == 1 {
		report(call.Pos(), fmt.Sprintf("labeled family %q declares no label keys; use the unlabeled form", name))
	}
	for _, arg := range call.Args[1:] {
		kl, ok := arg.(*ast.BasicLit)
		if !ok || kl.Kind != token.STRING {
			report(arg.Pos(), fmt.Sprintf("label keys of %q must be string literals from the bounded vocabulary", name))
			continue
		}
		key, err := strconv.Unquote(kl.Value)
		if err != nil {
			continue
		}
		if !allowedLabelKeys[key] {
			report(kl.Pos(), fmt.Sprintf("label key %q on %q is outside the bounded vocabulary (gpu_uuid, tenant, node, pool, consumer, strategy)", key, name))
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

// vet writes src as a throwaway .go file and returns checkFile's
// violation count.
func vet(t *testing.T, src string) int {
	t.Helper()
	path := filepath.Join(t.TempDir(), "src.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return checkFile(path)
}

func TestLaneguardFlagsMutationsInFanOutWindow(t *testing.T) {
	src := `package p

func bad(env *Env, sps *Reg) {
	env.FanOut(func(lane int) {
		env.After(d, f)            // scheduling: banned
		env.Go("p", f)             // scheduling: banned
		sps.Create(sp)             // store mutation: banned
		sps.MutateStatus(n, f)     // Mutate* prefix: banned
	})
}
`
	if got := vet(t, src); got != 4 {
		t.Fatalf("violations = %d, want 4", got)
	}
}

func TestLaneguardAllowsReadOnlyWindow(t *testing.T) {
	src := `package p

func good(env *Env, eng *Engine) {
	env.FanOut(func(lane int) {
		cands, _ := eng.Rank(u, pool, k) // read-only: fine
		env.LaneSend(lane, 0, cands)     // mailbox: the sanctioned channel
	})
	// The same selectors outside a window are untouched by laneguard.
	env.After(d, f)
	env.Go("p", f)
}
`
	if got := vet(t, src); got != 0 {
		t.Fatalf("violations = %d, want 0", got)
	}
}

func TestLaneguardSeesNestedClosures(t *testing.T) {
	src := `package p

func sneaky(env *Env, sps *Reg) {
	env.FanOut(func(lane int) {
		helper := func() { sps.Delete(n) }
		helper()
	})
}
`
	if got := vet(t, src); got != 1 {
		t.Fatalf("violations = %d, want 1", got)
	}
}

func TestLaneguardHonorsDetAllow(t *testing.T) {
	src := `package p

func exempt(env *Env, log *FileLog) {
	env.FanOut(func(lane int) {
		log.Put(line) //det:allow off-simulation sink
	})
}
`
	if got := vet(t, src); got != 0 {
		t.Fatalf("violations = %d, want 0", got)
	}
}

// Package metricscan is the shared AST scanner behind metricsdoc (which
// generates docs/METRICS.md) and detvet's doc-sync rule (which fails the
// build when the doc and the code disagree). It walks Go source trees and
// collects every metric family registered on the telemetry registry:
// calls to Counter/Gauge/FloatGauge/Histogram and their *Vec forms whose
// name argument is a string literal or resolves through a package-level
// string constant.
//
// Names built at runtime (schedfw's per-phase counters, for instance) are
// invisible to the scan by design; the generated doc records them in a
// dynamic-families section whose rows carry a <placeholder> segment, and
// the sync rule skips those rows.
package metricscan

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metric is one registered metric family.
type Metric struct {
	Name string
	// Type is the registry method that created the family (Counter,
	// GaugeVec, ...).
	Type string
	// Labels are the label keys of a *Vec family (nil otherwise).
	Labels []string
}

// methods maps registry method name -> whether it is a labeled (*Vec)
// form. Mirrors detvet's metric-hygiene table.
var methods = map[string]bool{
	"Counter": false, "Gauge": false, "FloatGauge": false, "Histogram": false,
	"CounterVec": true, "GaugeVec": true, "FloatGaugeVec": true, "HistogramVec": true,
}

// namePattern matches the names worth collecting — the registry's
// enforced kubeshare_ namespace.
var namePattern = regexp.MustCompile(`^kubeshare_[a-z0-9]+(_[a-z0-9]+)*$`)

// Scan walks the given roots (skipping _test.go files and testdata
// directories) and returns every registered metric family, sorted by
// name. When the same name is registered at several sites — lookups and
// registrations share the accessor methods — label keys from any *Vec
// site win over the unlabeled form.
func Scan(roots ...string) ([]Metric, error) {
	consts := map[string]string{}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			files = append(files, path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Pass 1: package-level string constants holding metric names, keyed
	// by bare identifier — a selector like core.MetricSchedLatency
	// resolves through its Sel name.
	fset := token.NewFileSet()
	parsed := make([]*ast.File, 0, len(files))
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("metricscan: %w", err)
		}
		parsed = append(parsed, f)
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					v, err := strconv.Unquote(lit.Value)
					if err == nil && namePattern.MatchString(v) {
						consts[name.Name] = v
					}
				}
			}
		}
	}

	// Pass 2: registration/lookup call sites.
	byName := map[string]Metric{}
	for _, f := range parsed {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			isVec, watched := methods[sel.Sel.Name]
			if !watched {
				return true
			}
			name := resolveName(call.Args[0], consts)
			if !namePattern.MatchString(name) {
				return true
			}
			m := Metric{Name: name, Type: sel.Sel.Name}
			if isVec {
				for _, arg := range call.Args[1:] {
					kl, ok := arg.(*ast.BasicLit)
					if !ok || kl.Kind != token.STRING {
						continue
					}
					if key, err := strconv.Unquote(kl.Value); err == nil {
						m.Labels = append(m.Labels, key)
					}
				}
			}
			if prev, seen := byName[name]; !seen || (len(prev.Labels) == 0 && isVec) {
				byName[name] = m
			}
			return true
		})
	}
	out := make([]Metric, 0, len(byName))
	for _, m := range byName {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// resolveName extracts the metric name from a call's first argument: a
// string literal, or an identifier/selector naming a collected constant.
// Anything else (Sprintf, variables, struct fields) is dynamic and
// returns "".
func resolveName(arg ast.Expr, consts map[string]string) string {
	switch a := arg.(type) {
	case *ast.BasicLit:
		if a.Kind == token.STRING {
			if v, err := strconv.Unquote(a.Value); err == nil {
				return v
			}
		}
	case *ast.Ident:
		return consts[a.Name]
	case *ast.SelectorExpr:
		return consts[a.Sel.Name]
	}
	return ""
}

// DocNames extracts the metric names recorded in a generated METRICS.md:
// every `code`-quoted kubeshare_ token at the start of a table row. Rows
// whose name carries a <placeholder> segment are dynamic families and are
// returned separately.
func DocNames(doc string) (static, dynamic []string) {
	row := regexp.MustCompile("^\\| *`(kubeshare_[a-z0-9_<>]+)`")
	for _, line := range strings.Split(doc, "\n") {
		m := row.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if strings.Contains(m[1], "<") {
			dynamic = append(dynamic, m[1])
		} else {
			static = append(static, m[1])
		}
	}
	return static, dynamic
}

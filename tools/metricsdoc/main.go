// Command metricsdoc generates docs/METRICS.md from the source tree: it
// scans every metric family registered on the telemetry registry (via
// tools/metricscan) and renders one reference table of name, type, label
// keys and a curated description, plus a section for the dynamic families
// whose names are built at runtime.
//
// Usage:
//
//	go run ./tools/metricsdoc            # rewrite docs/METRICS.md
//	go run ./tools/metricsdoc -check     # exit 1 if the doc is stale
//
// detvet's -metricsdoc rule enforces the other direction at check time:
// every registered kubeshare_ family must have a doc row and every static
// doc row must have a registration site, so the doc cannot rot in either
// direction. A scanned metric missing from the descriptions table below
// fails the generator — add the description when you add the metric.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kubeshare/tools/metricscan"
)

// descriptions is the curated per-family documentation. Keys must cover
// exactly the families the scanner finds; the generator fails otherwise.
var descriptions = map[string]string{
	"kubeshare_apiserver_read_requests_total":     "API server read (get/list) requests served.",
	"kubeshare_apiserver_reflector_relists_total": "Full reflector relists after watch-channel loss (legacy aggregate).",
	"kubeshare_apiserver_reflector_resumes_total": "Reflector watches resumed from a revision without a relist.",
	"kubeshare_apiserver_restarts_total":          "API server crash/restart cycles (chaos or operator driven).",
	"kubeshare_apiserver_watches_total":           "Watch streams opened against the API server.",
	"kubeshare_apiserver_write_requests_total":    "API server write (create/update/delete) requests served.",
	"kubeshare_devlib_throttle_retries_total":     "Device-library token requests deferred by the throttle window.",
	"kubeshare_devlib_token_grants_total":         "Tokens granted by the device library's sharing arbiter.",
	"kubeshare_devlib_token_hold_ns_total":        "Virtual nanoseconds of token hold time, per device and tenant.",
	"kubeshare_devlib_token_wait_seconds":         "Token-wait latency distribution per device — the sharing-pressure signal the paper's guarantees bound. Records exemplars when attribution is on.",
	"kubeshare_devmgr_bind_seconds":               "DevMgr bind latency: vGPU ensure (holder pod start included) plus bound-pod creation. Records exemplars when attribution is on.",
	"kubeshare_devmgr_binds_total":                "SharePod bind operations completed by DevMgr.",
	"kubeshare_devmgr_vgpu_creates_total":         "vGPUs created (holder pod acquired a physical GPU).",
	"kubeshare_devmgr_vgpu_recoveries_total":      "vGPUs recovered onto a replacement GPU after device loss.",
	"kubeshare_devmgr_vgpu_recovery_fails_total":  "vGPU recoveries that found no replacement GPU (vGPU written off).",
	"kubeshare_gpu_fairness_jain":                 "Per-GPU Jain fairness index over the auditor's sampling window.",
	"kubeshare_gpu_faults_total":                  "Simulated GPU device faults injected, per device and node.",
	"kubeshare_gpu_kernel_launches_total":         "Kernel launches executed on the simulated GPU, per device and node.",
	"kubeshare_gpu_utilization_ratio":             "Sampled busy fraction of each simulated GPU.",
	"kubeshare_kubelet_allocation_failures_total": "Device-plugin allocations the kubelet failed, per node.",
	"kubeshare_kubelet_pod_sync_seconds":          "Kubelet pod-sync latency (device allocation, image pull, container starts), per node. Records exemplars when attribution is on.",
	"kubeshare_kubelet_pod_syncs_total":           "Pod syncs completed by the kubelet, per node.",
	"kubeshare_obs_open_chains":                   "SharePod causal chains that never reached a kernel launch — excluded from latency percentiles, counted here instead. Set on attribution-enabled runs.",
	"kubeshare_obs_spans_dropped_total":           "Spans dropped at the tracer's retention cap. Registered lazily on the first drop.",
	"kubeshare_reflector_relist_total":            "Full relists per consumer after apiserver restarts invalidate a watch.",
	"kubeshare_sched_batch_conflicts_total":       "Placements discarded by batched-cycle conflict resolution.",
	"kubeshare_sched_decisions_total":             "Scheduling decisions committed by the KubeShare scheduler.",
	"kubeshare_sched_gang_admissions_total":       "Gangs admitted atomically (all members placed in one cycle).",
	"kubeshare_sched_gang_timeouts_total":         "Gangs rejected after the co-scheduling timeout expired.",
	"kubeshare_sched_latency_seconds":             "Submit-to-scheduled latency per sharePod. Records exemplars when attribution is on.",
	"kubeshare_sched_nocapacity_cycles_total":     "Scheduler cycles that found no feasible capacity.",
	"kubeshare_sched_pending_sharepods":           "SharePods currently waiting in the scheduling queue.",
	"kubeshare_sched_requeues_total":              "SharePods requeued after losing their bound pod or device.",
	"kubeshare_scheduler_bind_latency_seconds":    "Native kube-scheduler submit-to-bind latency. Records exemplars when attribution is on.",
	"kubeshare_scheduler_binds_total":             "Pods bound by the native kube-scheduler.",
	"kubeshare_scheduler_pending_pods":            "Pods currently pending in the native scheduler's queue.",
	"kubeshare_sharing_admits_total":              "Client admissions per device and sharing strategy.",
	"kubeshare_sharing_devtime_ns_total":          "Virtual device time consumed per device and tenant under the active sharing strategy.",
	"kubeshare_store_checkpoint_ns":               "Virtual nanoseconds spent writing durability checkpoints.",
	"kubeshare_store_wal_records_total":           "Records appended to the durability write-ahead log.",
	"kubeshare_tenant_gpu_limit":                  "Per-tenant GPU limit from the sharePod spec.",
	"kubeshare_tenant_gpu_request":                "Per-tenant GPU request from the sharePod spec.",
	"kubeshare_tenant_token_share":                "Per-tenant share of granted token time on a device (auditor window).",
	"kubeshare_tenant_token_share_ratio":          "Per-tenant token share normalized by entitlement (auditor window).",
}

// dynamic documents the families whose names are built at runtime — the
// scanner cannot see them, so they are listed here and rendered in their
// own section with a <placeholder> segment the sync rule skips.
var dynamic = []struct{ name, typ, desc string }{
	{"kubeshare_sched_phase_<phase>_runs_total", "Counter",
		"Per-phase plugin executions in the scheduling framework (prefilter, filter, score, reserve, permit...); one counter per phase name."},
}

func main() {
	check := flag.Bool("check", false, "verify docs/METRICS.md is current instead of rewriting it")
	out := flag.String("o", "docs/METRICS.md", "output path")
	flag.Parse()

	metrics, err := metricscan.Scan("./internal", "./cmd")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var b strings.Builder
	b.WriteString("# Metrics reference\n\n")
	b.WriteString("Generated by `go run ./tools/metricsdoc` — do not edit by hand.\n")
	b.WriteString("`detvet -metricsdoc` fails the build when this file and the registered\n")
	b.WriteString("families diverge in either direction.\n\n")
	b.WriteString("Histograms marked as recording exemplars attach the max-latency\n")
	b.WriteString("observation's trace key and span ID per bucket when a run enables\n")
	b.WriteString("attribution (`SharingConfig.Attribution`, the latency/fig19\n")
	b.WriteString("experiments, or `kubeshare-sim profile`).\n\n")
	b.WriteString("| Name | Type | Labels | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	missing := 0
	for _, m := range metrics {
		desc, ok := descriptions[m.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "metricsdoc: %s has no description — add it to tools/metricsdoc\n", m.Name)
			missing++
			continue
		}
		labels := strings.Join(m.Labels, ", ")
		if labels == "" {
			labels = "—"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", m.Name, kind(m.Type), labels, desc)
	}
	for name := range descriptions {
		found := false
		for _, m := range metrics {
			if m.Name == name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "metricsdoc: %s is described but no longer registered — remove it\n", name)
			missing++
		}
	}
	if missing > 0 {
		os.Exit(1)
	}
	b.WriteString("\n## Dynamic families\n\n")
	b.WriteString("Names built at runtime; the `<placeholder>` segment enumerates a\n")
	b.WriteString("closed set.\n\n")
	b.WriteString("| Name | Type | Labels | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, d := range dynamic {
		fmt.Fprintf(&b, "| `%s` | %s | — | %s |\n", d.name, d.typ, d.desc)
	}

	if *check {
		cur, err := os.ReadFile(*out)
		if err != nil || string(cur) != b.String() {
			fmt.Fprintf(os.Stderr, "metricsdoc: %s is stale; run `go run ./tools/metricsdoc`\n", *out)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// kind renders the registry method as the metric's kind.
func kind(method string) string {
	if strings.HasSuffix(method, "Vec") {
		method = strings.TrimSuffix(method, "Vec")
	}
	switch method {
	case "Counter":
		return "counter"
	case "Gauge", "FloatGauge":
		return "gauge"
	case "Histogram":
		return "histogram"
	}
	return strings.ToLower(method)
}
